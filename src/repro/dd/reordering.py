"""Variable (qubit) reordering on decision diagrams.

DD sizes depend heavily on the variable order: a state that pairs qubit
``i`` with qubit ``i + n/2`` is exponential under the natural order but
linear once the paired qubits are adjacent.  This module provides the
standard reordering toolkit, adapted to quasi-reduced edge-weighted DDs:

* :func:`swap_adjacent_levels` -- exchange two neighbouring variables in
  time proportional to the number of nodes at or above the swapped levels;
* :func:`permute_qubits` -- realise an arbitrary qubit permutation as a
  bubble-sorted sequence of adjacent swaps;
* :func:`sift` -- Rudell-style sifting: greedily move each variable to its
  locally best position, returning the (possibly much smaller) reordered
  diagram together with the permutation that maps old qubit positions to
  new ones.

Reordering *relabels* which qubit lives on which DD level: the amplitude of
basis state ``x`` in the original diagram equals the amplitude of the
bit-permuted index in the reordered one.  Callers that keep simulating
afterwards must apply the same permutation to their circuits (see
:func:`repro.circuit.mapping.permute_operation`).

Level gaps
----------

Vector DDs are quasi-reduced without exceptions: every non-zero edge of a
level-``z`` node points to a node at level ``z - 1``.  A vector edge that
skips a level is corrupt, and every function here raises a clear
:class:`ValueError` instead of silently building a wrong diagram.  Matrix
DDs built with ``Package(identity_edges=True)`` legitimately skip levels --
a skipped level reads as an identity factor -- and the swap machinery
expands those virtual identity levels on the fly (``size=`` tells it how
tall the diagram nominally is when the root itself sits below the top).
"""

from __future__ import annotations

from collections.abc import Sequence

from .edge import Edge
from .node import MatrixNode
from .package import Package

__all__ = ["swap_adjacent_levels", "permute_qubits", "sift",
           "apply_index_permutation"]


def _is_matrix(edge: Edge) -> bool:
    return isinstance(edge.node, MatrixNode)


def _gap_error(at_level: int, node_level: int) -> ValueError:
    return ValueError(
        f"vector DD skips level {at_level}: expected a node at level "
        f"{at_level}, found one at level {node_level}; quasi-reduced "
        f"state DDs must not have level gaps (identity-edge gaps exist "
        f"only on matrix DDs)")


def _virtual_children(package: Package, edge: Edge, arity: int,
                      at_level: int) -> list[Edge]:
    """Children of ``edge`` viewed as a node at ``at_level``.

    0-stubs read as all-zero nodes.  A matrix edge whose node sits *below*
    ``at_level`` is an identity-edge gap (``Package(identity_edges=True)``):
    the skipped level is an identity factor, so its virtual children are
    ``(edge, 0, 0, edge)``.  A vector edge below ``at_level`` is corrupt
    and raises.
    """
    if edge.weight == 0:
        return [package.zero] * arity
    node_level = edge.node.level
    if node_level == at_level:
        return [child.scaled(edge.weight) for child in edge.node.edges]
    if node_level > at_level:
        raise ValueError(
            f"malformed DD: node at level {node_level} reached while "
            f"expecting level <= {at_level}")
    if arity == 4:
        return [edge, package.zero, package.zero, edge]
    raise _gap_error(at_level, node_level)


def _swap_vector_block(package: Package, edge: Edge, level: int) -> Edge:
    """Swap levels ``level+1`` / ``level`` under a level-``level+1`` edge."""
    grandchildren = [
        _virtual_children(package, child, 2, level)
        for child in _virtual_children(package, edge, 2, level + 1)
    ]
    new_children = []
    for j in (0, 1):
        new_children.append(package.make_vector_node(
            level, (grandchildren[0][j], grandchildren[1][j])))
    return package.make_vector_node(level + 1,
                                    (new_children[0], new_children[1]))


def _swap_matrix_block(package: Package, edge: Edge, level: int) -> Edge:
    grandchildren = [
        _virtual_children(package, child, 4, level)
        for child in _virtual_children(package, edge, 4, level + 1)
    ]
    new_children = []
    for outer in range(4):  # (row, col) bits of the variable moving up
        inner_children = tuple(grandchildren[inner][outer]
                               for inner in range(4))
        new_children.append(package.make_matrix_node(level, inner_children))
    return package.make_matrix_node(level + 1, tuple(new_children))


def swap_adjacent_levels(package: Package, edge: Edge, level: int,
                         size: int | None = None) -> Edge:
    """Exchange the variables at ``level`` and ``level + 1``.

    Works for vector and matrix DDs.  The result represents the same
    object re-indexed: bit ``level`` and bit ``level + 1`` of every basis
    index trade places.

    ``size`` is the nominal qubit count; it defaults to the root level
    plus one.  Passing it explicitly permits swaps on identity-edge matrix
    DDs whose root sits below the top level (the skipped levels read as
    identity factors, which the swap expands on demand).  A *vector* DD
    with any level gap -- including a root below ``size - 1`` -- raises
    :class:`ValueError`: states are quasi-reduced without gaps, so a gap
    means corruption, and silently treating it as identity would build a
    wrong diagram.
    """
    if edge.weight == 0:
        return edge
    root_level = edge.node.level
    top = root_level if size is None else size - 1
    if level < 0 or level + 1 > top:
        raise ValueError(f"cannot swap levels {level}/{level + 1} in a DD "
                         f"of height {top + 1} (root at level {root_level})")
    if root_level < 0:
        # A non-zero terminal-rooted edge of nominal size > 0 can only be a
        # fully collapsed identity matrix (identity_edges); swapping two
        # identity levels is a no-op.
        return edge
    matrix = _is_matrix(edge)
    if not matrix and root_level < top:
        raise _gap_error(top, root_level)
    swap_block = _swap_matrix_block if matrix else _swap_vector_block
    make_node = package.make_matrix_node if matrix \
        else package.make_vector_node
    cache: dict[int, Edge] = {}

    def swap_under(node) -> Edge:
        """Swap the window under a node at ``level + 1`` (or, for matrix
        gaps, a node at ``level`` viewed one level up)."""
        return swap_block(package, Edge(node, 1 + 0j), level)

    def rebuild(node) -> Edge:
        found = cache.get(id(node))
        if found is not None:
            return found
        children = []
        for child in node.edges:
            if child.weight == 0:
                children.append(package.zero)
                continue
            child_level = child.node.level
            if child_level > level + 1:
                children.append(package._scaled(rebuild(child.node),
                                                child.weight))
            elif child_level == level + 1 or (matrix
                                              and child_level == level):
                children.append(package._scaled(swap_under(child.node),
                                                child.weight))
            elif matrix:
                # The identity gap spans both swapped levels; identity is
                # symmetric under the swap, so the sub-DD is unchanged.
                children.append(child)
            else:
                raise _gap_error(node.level - 1, child_level)
        result = make_node(node.level, tuple(children))
        cache[id(node)] = result
        return result

    if root_level > level + 1:
        return package._scaled(rebuild(edge.node), edge.weight)
    if root_level == level + 1 or (matrix and root_level == level):
        return package._scaled(swap_under(edge.node), edge.weight)
    # matrix root entirely below the swap window: both swapped levels are
    # identity factors -- nothing to do
    return edge


def apply_index_permutation(index: int, permutation: Sequence[int]) -> int:
    """Move bit ``q`` of ``index`` to position ``permutation[q]``.

    This is the measurement-remap direction: when a DD was reordered with
    ``permutation`` (original qubit ``q`` now lives on level
    ``permutation[q]``), the amplitude of logical basis state ``x`` is the
    reordered DD's amplitude at ``apply_index_permutation(x, permutation)``.
    """
    result = 0
    for source, target in enumerate(permutation):
        if (index >> source) & 1:
            result |= 1 << target
    return result


def permute_qubits(package: Package, edge: Edge,
                   permutation: Sequence[int],
                   size: int | None = None) -> Edge:
    """Reorder a DD so the variable at level ``q`` moves to level
    ``permutation[q]``.

    ``permutation`` must be a permutation of ``0 .. size - 1`` (``size``
    defaults to the root level plus one).  The returned DD satisfies
    ``amplitude(new, apply_index_permutation(x, p)) == amplitude(old, x)``
    (and the matrix analogue for both indices).

    Passing ``size`` explicitly supports identity-edge matrix DDs whose
    root sits below ``size - 1``; vector DDs must be exactly ``size``
    levels tall (see :func:`swap_adjacent_levels`).
    """
    if edge.weight == 0:
        return edge
    root_level = edge.node.level
    if size is None:
        size = root_level + 1
    permutation = list(permutation)
    if sorted(permutation) != list(range(size)):
        raise ValueError(f"not a permutation of 0..{size - 1}: "
                         f"{permutation}")
    if root_level < 0:
        return edge  # collapsed identity matrix: permutation-invariant
    if root_level + 1 > size:
        raise ValueError(f"DD rooted at level {root_level} is taller than "
                         f"the declared size {size}")
    if not _is_matrix(edge) and root_level + 1 != size:
        raise _gap_error(size - 1, root_level)
    # positions[level] = original variable currently living at `level`
    positions = list(range(size))
    target_of = dict(enumerate(permutation))
    current = edge
    # Selection-sort by adjacent swaps: bubble each variable to its target,
    # processing targets from the top level downward.
    for target in range(size - 1, -1, -1):
        wanted = next(source for source, destination in target_of.items()
                      if destination == target)
        where = positions.index(wanted)
        while where < target:
            current = swap_adjacent_levels(package, current, where,
                                           size=size)
            positions[where], positions[where + 1] = \
                positions[where + 1], positions[where]
            where += 1
    return current


def sift(package: Package, edge: Edge, max_growth: float = 2.0,
         num_qubits: int | None = None) -> tuple[Edge, list[int]]:
    """Rudell sifting: greedily search a better variable order.

    Each variable is bubbled through every position; it stays at the
    position minimising the total node count.  A move is abandoned early if
    the diagram grows beyond ``max_growth`` times its best size.

    Returns ``(reordered_edge, permutation)`` where ``permutation[q]`` is
    the new level of original qubit ``q``
    (see :func:`apply_index_permutation`).  The returned diagram is never
    larger than the input (the best diagram seen is the input itself when
    no move improves on it), and the permutation always has one entry per
    qubit -- ``num_qubits`` pins that length for zero/terminal edges,
    whose own height is ambiguous (it defaults to the root level plus
    one).
    """
    if num_qubits is not None and num_qubits < 0:
        raise ValueError(f"num_qubits must be >= 0, got {num_qubits}")
    size = num_qubits if num_qubits is not None \
        else max(edge.node.level + 1, 0)
    if edge.weight == 0 or edge.node.level < 1 or size < 2:
        return edge, list(range(size))
    if edge.node.level + 1 > size:
        raise ValueError(f"DD rooted at level {edge.node.level} is taller "
                         f"than the declared num_qubits {size}")
    if not _is_matrix(edge) and edge.node.level + 1 != size:
        raise _gap_error(size - 1, edge.node.level)
    current = edge
    positions = list(range(size))  # positions[level] = original variable

    def swap_at(diagram: Edge, level: int) -> Edge:
        positions[level], positions[level + 1] = \
            positions[level + 1], positions[level]
        return swap_adjacent_levels(package, diagram, level, size=size)

    for variable in range(size):
        best_nodes = package.count_nodes(current)
        level = positions.index(variable)
        best_diagram = current
        best_positions = list(positions)
        # sweep down to the bottom
        working = current
        for down in range(level, 0, -1):
            working = swap_at(working, down - 1)
            nodes = package.count_nodes(working)
            if nodes < best_nodes:
                best_nodes = nodes
                best_diagram = working
                best_positions = list(positions)
            if nodes > max_growth * best_nodes:
                break
        # back up and sweep to the top
        bottom = positions.index(variable)
        for up in range(bottom, size - 1):
            working = swap_at(working, up)
            nodes = package.count_nodes(working)
            if nodes < best_nodes:
                best_nodes = nodes
                best_diagram = working
                best_positions = list(positions)
            if nodes > max_growth * best_nodes:
                break
        current = best_diagram
        positions = best_positions
    permutation = [0] * size
    for level, variable in enumerate(positions):
        permutation[variable] = level
    return current, permutation
