"""Introspection and export utilities for DDs.

Graphical export (Graphviz dot) mirrors the figures of the paper: vector
nodes with two successors, matrix nodes with four, 0-stubs, and edge-weight
labels.  ``level_histogram`` and ``size_report`` are the measurement tools
behind the Fig.-5-style size studies.
"""

from __future__ import annotations

from collections import Counter

from .complex_table import polar_str
from .edge import Edge

__all__ = ["to_dot", "level_histogram", "size_report"]


def _collect(edge: Edge):
    """All reachable internal nodes, in deterministic discovery order."""
    nodes = []
    seen: set[int] = set()
    stack = [edge.node] if edge.weight != 0 and edge.node.level != -1 else []
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        nodes.append(node)
        for child in reversed(node.edges):
            if child.weight != 0 and child.node.level != -1:
                stack.append(child.node)
    return nodes


def to_dot(edge: Edge, name: str = "dd") -> str:
    """Render a DD (vector or matrix) as a Graphviz dot string."""
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  root [shape=point, label=""];']
    nodes = _collect(edge)
    ids = {id(node): f"n{i}" for i, node in enumerate(nodes)}
    lines.append('  terminal [shape=box, label="1"];')
    if edge.weight == 0:
        lines.append('  zero [shape=box, label="0"];')
        lines.append("  root -> zero;")
    else:
        target = "terminal" if edge.node.level == -1 else ids[id(edge.node)]
        lines.append(f'  root -> {target} [label="{polar_str(edge.weight)}"];')
    for node in nodes:
        node_id = ids[id(node)]
        lines.append(f'  {node_id} [shape=circle, label="q{node.level}"];')
        for index, child in enumerate(node.edges):
            if child.weight == 0:
                stub = f"{node_id}_z{index}"
                lines.append(f'  {stub} [shape=plaintext, label="0"];')
                lines.append(f"  {node_id} -> {stub} [style=dashed];")
                continue
            target = "terminal" if child.node.level == -1 \
                else ids[id(child.node)]
            label = "" if child.weight == 1 else polar_str(child.weight)
            lines.append(
                f'  {node_id} -> {target} [label="{label}", '
                f'taillabel="{index}"];')
    lines.append("}")
    return "\n".join(lines)


def level_histogram(edge: Edge) -> dict[int, int]:
    """Number of nodes per level -- the DD's 'width profile'."""
    histogram: Counter[int] = Counter()
    for node in _collect(edge):
        histogram[node.level] += 1
    return dict(sorted(histogram.items(), reverse=True))


def size_report(edge: Edge, label: str = "dd") -> str:
    """One-line human-readable size summary used by the Fig.-5 study."""
    histogram = level_histogram(edge)
    total = sum(histogram.values())
    widths = ",".join(str(histogram.get(level, 0))
                      for level in sorted(histogram, reverse=True))
    return f"{label}: {total} nodes (per level top-down: {widths})"
