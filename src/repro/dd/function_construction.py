"""Direct DD construction from functional specifications.

This module is the backbone of the paper's *DD-construct* strategy
(Sec. IV-B): instead of composing a Boolean oracle from hundreds of
elementary gate DDs (each requiring a matrix-matrix or matrix-vector
multiplication), the unitary of the oracle is built *directly* from its
functional specification.  For reversible Boolean blocks -- such as the
modular-multiplication components ``U_{a^{2^i}}`` of Shor's algorithm -- the
unitary is a permutation matrix, and its DD can be constructed in
``O(n * 2^n)`` steps with full sub-structure sharing, with **no**
multiplications at all and **no** working/ancilla qubits.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from .edge import Edge
from .package import Package

__all__ = [
    "build_permutation_dd",
    "build_controlled_permutation_dd",
    "controlled_unitary_dd",
    "modular_multiplication_permutation",
]


def _as_permutation(perm, size: int) -> list[int]:
    if callable(perm):
        table = [perm(i) for i in range(size)]
    else:
        table = list(perm)
    if len(table) != size:
        raise ValueError(f"permutation must have {size} entries, "
                         f"got {len(table)}")
    if sorted(table) != list(range(size)):
        raise ValueError("mapping is not a permutation (not a bijection on "
                         f"0..{size - 1}); a non-reversible function has no "
                         "unitary permutation matrix")
    return table


def build_permutation_dd(package: Package,
                         perm: Callable[[int], int] | Sequence[int],
                         num_qubits: int) -> Edge:
    """Build the matrix DD of the permutation unitary ``|perm(x)> <x|``.

    ``perm`` maps each input basis index (column) to its output basis index
    (row) and must be a bijection on ``0 .. 2^num_qubits - 1``.

    The construction recurses over column ranges, keeping one partial block
    per distinct output-row prefix, so the work is proportional to the number
    of *distinct* blocks rather than to the full ``4^n`` entry count, and all
    structure sharing happens automatically through the unique table.
    """
    size = 1 << num_qubits
    table = _as_permutation(perm, size)

    def build(level: int, col_base: int) -> dict[int, Edge]:
        """Blocks for columns ``[col_base, col_base + 2^(level+1))``.

        Returns ``{row_prefix: block_edge}`` where ``row_prefix`` is aligned
        to the block span and only non-zero blocks are present.
        """
        if level < 0:
            return {table[col_base]: package.one}
        span = 1 << level
        left = build(level - 1, col_base)
        right = build(level - 1, col_base + span)
        blocks: dict[int, Edge] = {}
        prefixes = {p & ~(2 * span - 1) for p in left} \
            | {p & ~(2 * span - 1) for p in right}
        for prefix in prefixes:
            children = []
            for row_bit in (0, 1):
                sub_prefix = prefix | (row_bit * span)
                children.append(left.get(sub_prefix, package.zero))
                children.append(right.get(sub_prefix, package.zero))
            blocks[prefix] = package.make_matrix_node(level, tuple(children))
        return blocks

    blocks = build(num_qubits - 1, 0)
    if list(blocks.keys()) != [0]:
        raise AssertionError("permutation DD construction must yield exactly "
                             "the root block")  # pragma: no cover
    return blocks[0]


def build_controlled_permutation_dd(package: Package,
                                    perm: Callable[[int], int] | Sequence[int],
                                    num_qubits: int,
                                    num_controls: int = 1) -> Edge:
    """Permutation DD on ``num_qubits`` qubits, controlled by the qubits above.

    The permutation acts on qubits ``0 .. num_qubits-1``; the control qubits
    occupy levels ``num_qubits .. num_qubits + num_controls - 1`` (all
    positive controls).  This is exactly the shape needed for the
    semiclassical controlled-``U_{a^{2^i}}`` steps of Shor's algorithm.
    """
    if num_controls < 0:
        raise ValueError("num_controls must be non-negative")
    edge = build_permutation_dd(package, perm, num_qubits)
    for level in range(num_qubits, num_qubits + num_controls):
        identity_below = package.identity(level)
        edge = package.make_matrix_node(
            level, (identity_below, package.zero, package.zero, edge))
    return edge


def controlled_unitary_dd(package: Package, unitary: Edge,
                          num_qubits_total: int, control: int) -> Edge:
    """Wrap a matrix DD as a controlled operation on a wider register.

    ``unitary`` acts on qubits ``0 .. m-1`` (its root level is ``m - 1``);
    the result acts on ``num_qubits_total`` qubits, applies ``unitary`` when
    qubit ``control`` is ``|1>`` (identity otherwise), and realises the
    identity on all remaining qubits.  ``control`` must lie above the
    unitary's register (``control >= m``) -- the natural shape for phase
    estimation, where counting qubits sit above the work register.
    """
    if unitary.weight == 0:
        raise ValueError("cannot control the zero matrix")
    bottom = unitary.node.level + 1
    if not bottom <= control < num_qubits_total:
        raise ValueError(
            f"control {control} must lie in [{bottom}, "
            f"{num_qubits_total - 1}] above the {bottom}-qubit unitary")
    # identity levels between the unitary and the control
    active = unitary
    for level in range(bottom, control):
        active = package.make_matrix_node(
            level, (active, package.zero, package.zero, active))
    edge = package.make_matrix_node(
        control,
        (package.identity(control), package.zero, package.zero, active))
    for level in range(control + 1, num_qubits_total):
        edge = package.make_matrix_node(
            level, (edge, package.zero, package.zero, edge))
    return edge


def modular_multiplication_permutation(a: int, modulus: int,
                                       num_qubits: int) -> list[int]:
    """The permutation ``x -> a*x mod N`` (identity for ``x >= N``).

    This is the functional specification of Shor's modular-exponentiation
    building block.  ``a`` must be coprime to ``modulus`` for the map to be a
    bijection, and ``modulus <= 2^num_qubits`` so every residue fits in the
    register.
    """
    import math

    if modulus <= 1:
        raise ValueError("modulus must be at least 2")
    if math.gcd(a, modulus) != 1:
        raise ValueError(f"a={a} is not coprime to N={modulus}; "
                         "x -> a*x mod N would not be reversible")
    size = 1 << num_qubits
    if modulus > size:
        raise ValueError(f"modulus {modulus} does not fit in "
                         f"{num_qubits} qubits")
    a = a % modulus
    return [(a * x) % modulus if x < modulus else x for x in range(size)]
