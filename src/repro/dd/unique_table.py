"""Unique tables -- hash-consing for DD nodes.

Every node is interned: before a new node is allocated, the table is checked
for an existing node with the same level and (node-identity, canonical
weight) successor tuple.  Because edge weights are canonicalised by the
complex table first, structural equality reduces to tuple equality of
``(id(child), weight)`` pairs, and node identity (``is``) afterwards equals
DD equality -- the property all compute-table caching relies on.
"""

from __future__ import annotations

from .edge import Edge
from .node import MatrixNode, VectorNode

__all__ = ["UniqueTable"]


class UniqueTable:
    """One hash-consing table for one node species (vector or matrix)."""

    __slots__ = ("_node_class", "_table", "_serial", "lookups", "hits",
                 "created")

    def __init__(self, node_class: type) -> None:
        self._node_class = node_class
        self._table: dict[tuple, VectorNode | MatrixNode] = {}
        #: next interning serial; monotone over the table's lifetime so a
        #: node's serial is its creation rank -- a run-to-run-stable
        #: canonical order (``id()`` is not: it's an address)
        self._serial = 0
        self.lookups = 0
        self.hits = 0
        #: whether the last ``get_or_insert`` allocated a fresh node
        self.created = False

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def _key(level: int, edges: tuple[Edge, ...]) -> tuple:
        # Unrolled for the two node arities -- this runs once per node
        # construction and the generic genexpr version dominated profiles.
        if len(edges) == 2:
            e0, e1 = edges
            return (level, id(e0.node), e0.weight, id(e1.node), e1.weight)
        e0, e1, e2, e3 = edges
        return (level, id(e0.node), e0.weight, id(e1.node), e1.weight,
                id(e2.node), e2.weight, id(e3.node), e3.weight)

    def get_or_insert(self, level: int, edges: tuple[Edge, ...]):
        """Return the canonical node for ``(level, edges)``, creating it if new."""
        self.lookups += 1
        # _key inlined for the common binary case -- one call per node
        # construction adds up in sequential simulation.
        if len(edges) == 2:
            e0, e1 = edges
            key = (level, id(e0.node), e0.weight, id(e1.node), e1.weight)
        else:
            key = self._key(level, edges)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            self.created = False
            return node
        node = self._node_class(level, edges)
        node.serial = self._serial
        self._serial += 1
        self._table[key] = node
        self.created = True
        return node

    def clear(self) -> None:
        self._table.clear()
        self.lookups = 0
        self.hits = 0

    def nodes(self):
        """Iterate over all live nodes (used by garbage collection)."""
        return self._table.values()

    def items(self):
        """Iterate over ``(stored key, node)`` pairs (used by the auditor)."""
        return self._table.items()

    def canonical_key(self, node) -> tuple:
        """Recompute the canonical interning key of ``node``.

        For a healthy table, ``canonical_key(node)`` equals the key the
        node is stored under, and no two stored nodes share a canonical
        key.  :meth:`Package.check_invariants` recomputes keys through
        this method to detect corrupted or duplicated entries.
        """
        return self._key(node.level, node.edges)

    def count_dead(self, live: set[int]) -> int:
        """How many interned nodes are *not* in ``live`` (no mutation)."""
        return sum(1 for node in self._table.values() if id(node) not in live)

    def remove_unreferenced(self, live: set[int]) -> int:
        """Drop all nodes whose ``id`` is not in ``live``; return count removed."""
        table = self._table
        before = len(table)
        if before == 0:
            return 0
        # When most of the table dies (the common case for post-run sweeps)
        # rebuilding is cheaper than collecting the dead keys and deleting
        # them one by one; when most survives, targeted deletion wins.
        if len(live) < before // 2:
            self._table = {key: node for key, node in table.items()
                           if id(node) in live}
        else:
            dead = [key for key, node in table.items()
                    if id(node) not in live]
            for key in dead:
                del table[key]
        return before - len(self._table)
