"""Unique tables -- hash-consing for DD nodes.

Every node is interned: before a new node is allocated, the table is checked
for an existing node with the same level and (node-identity, canonical
weight) successor tuple.  Because edge weights are canonicalised by the
complex table first, structural equality reduces to tuple equality of
``(id(child), weight)`` pairs, and node identity (``is``) afterwards equals
DD equality -- the property all compute-table caching relies on.
"""

from __future__ import annotations

from .edge import Edge
from .node import MatrixNode, VectorNode

__all__ = ["UniqueTable"]


class UniqueTable:
    """One hash-consing table for one node species (vector or matrix)."""

    def __init__(self, node_class: type) -> None:
        self._node_class = node_class
        self._table: dict[tuple, VectorNode | MatrixNode] = {}
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._table)

    @staticmethod
    def _key(level: int, edges: tuple[Edge, ...]) -> tuple:
        return (level,) + tuple(item for e in edges for item in (id(e.node), e.weight))

    def get_or_insert(self, level: int, edges: tuple[Edge, ...]):
        """Return the canonical node for ``(level, edges)``, creating it if new."""
        self.lookups += 1
        key = self._key(level, edges)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        node = self._node_class(level, edges)
        self._table[key] = node
        return node

    def clear(self) -> None:
        self._table.clear()
        self.lookups = 0
        self.hits = 0

    def nodes(self):
        """Iterate over all live nodes (used by garbage collection)."""
        return self._table.values()

    def remove_unreferenced(self, live: set[int]) -> int:
        """Drop all nodes whose ``id`` is not in ``live``; return count removed."""
        dead = [key for key, node in self._table.items() if id(node) not in live]
        for key in dead:
            del self._table[key]
        return len(dead)
