"""Weighted DD edges.

An edge is an (immutable) pair of a target node and a complex weight.  The
amplitude of a basis state is the product of all edge weights on the path
from the root edge to the terminal (paper Fig. 2c).  A weight of exactly 0
denotes a zero sub-vector / sub-matrix ("0-stub"); by convention such edges
point directly at the terminal regardless of their level.

Weights stored in edges are always canonical representatives from the
package's :class:`~repro.dd.complex_table.ComplexTable`, which is what makes
structural hashing of nodes sound under floating-point noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle breaker for type checkers
    from .node import DDNode

__all__ = ["Edge"]

#: Shared zero-stub edge handed out by :meth:`Edge.scaled` (lazily created
#: to avoid the edge->node->edge import cycle at module load).
_ZERO_EDGE = None


class Edge:
    """A weighted pointer to a DD node."""

    __slots__ = ("node", "weight")

    def __init__(self, node: "DDNode", weight: complex) -> None:
        self.node = node
        self.weight = weight

    def is_zero(self) -> bool:
        """Whether this edge denotes the zero vector / matrix."""
        return self.weight == 0

    def is_terminal(self) -> bool:
        """Whether this edge points at the terminal sink."""
        return self.node.level == -1

    @property
    def level(self) -> int:
        """Level of the node this edge points at (-1 for the terminal)."""
        return self.node.level

    def scaled(self, factor: complex) -> "Edge":
        """This edge with its weight multiplied by ``factor`` (not interned).

        Callers inside the package re-intern through the complex table; the
        public API only hands out edges whose weights are canonical.
        """
        if factor == 0:
            global _ZERO_EDGE
            if _ZERO_EDGE is None:
                from .node import TERMINAL

                _ZERO_EDGE = Edge(TERMINAL, 0j)
            return _ZERO_EDGE
        return Edge(self.node, self.weight * factor)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return self.node is other.node and self.weight == other.weight

    def __hash__(self) -> int:
        return hash((id(self.node), self.weight))

    def __repr__(self) -> str:
        return f"Edge({self.node!r}, weight={self.weight})"
