"""Serialisation of decision diagrams.

Serialises a DD to a JSON-compatible dictionary (and back) so states and
operators can be checkpointed, diffed, or shipped between processes.  The
format stores each distinct node once (exploiting the sharing that makes
DDs compact), in bottom-up topological order:

```json
{
  "kind": "vector",
  "root": [nodeRef, re, im],
  "nodes": [[level, [childRef, re, im], [childRef, re, im]], ...]
}
```

``nodeRef`` is an index into ``nodes`` or ``-1`` for the terminal; zero
edges are stored as ``[-1, 0.0, 0.0]``.  Loading re-interns everything
through the target package, so loaded diagrams share structure with the
diagrams already living there.
"""

from __future__ import annotations

import json
from typing import Any

from .edge import Edge
from .node import MatrixNode, TERMINAL
from .package import Package

__all__ = ["serialize_dd", "deserialize_dd", "dumps_dd", "loads_dd"]

_TERMINAL_REF = -1


def serialize_dd(edge: Edge) -> dict[str, Any]:
    """Serialise a vector or matrix DD to a JSON-compatible dict."""
    kind = "matrix" if isinstance(edge.node, MatrixNode) else "vector"
    nodes: list[list] = []
    index_of: dict[int, int] = {}

    def visit(node) -> int:
        if node.level == -1:
            return _TERMINAL_REF
        found = index_of.get(id(node))
        if found is not None:
            return found
        encoded_children = []
        for child in node.edges:
            if child.weight == 0:
                encoded_children.append([_TERMINAL_REF, 0.0, 0.0])
            else:
                encoded_children.append([visit(child.node),
                                         child.weight.real,
                                         child.weight.imag])
        index = len(nodes)
        index_of[id(node)] = index
        nodes.append([node.level, *encoded_children])
        return index

    if edge.weight == 0:
        root = [_TERMINAL_REF, 0.0, 0.0]
    else:
        root = [visit(edge.node), edge.weight.real, edge.weight.imag]
    return {"kind": kind, "root": root, "nodes": nodes}


def deserialize_dd(package: Package, payload: dict[str, Any]) -> Edge:
    """Rebuild a DD inside ``package`` from :func:`serialize_dd` output."""
    kind = payload.get("kind")
    if kind not in ("vector", "matrix"):
        raise ValueError(f"unknown DD kind {kind!r}")
    make_node = package.make_matrix_node if kind == "matrix" \
        else package.make_vector_node
    arity = 4 if kind == "matrix" else 2
    nodes = payload["nodes"]
    rebuilt: list[Edge] = []

    def edge_from(encoded) -> Edge:
        ref, re, im = encoded
        weight = complex(re, im)
        if weight == 0:
            return package.zero
        if ref == _TERMINAL_REF:
            return package.terminal_edge(weight)
        if not 0 <= ref < len(rebuilt):
            raise ValueError(f"dangling node reference {ref}")
        return package._scaled(rebuilt[ref], weight)

    for entry in nodes:
        level, *children = entry
        if len(children) != arity:
            raise ValueError(f"node at level {level} has {len(children)} "
                             f"children, expected {arity}")
        rebuilt.append(make_node(level, tuple(edge_from(child)
                                              for child in children)))
    return edge_from(payload["root"])


def dumps_dd(edge: Edge, indent: int | None = None) -> str:
    """Serialise a DD to a JSON string."""
    return json.dumps(serialize_dd(edge), indent=indent)


def loads_dd(package: Package, text: str) -> Edge:
    """Load a DD from a JSON string produced by :func:`dumps_dd`."""
    return deserialize_dd(package, json.loads(text))
