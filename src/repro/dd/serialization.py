"""Serialisation of decision diagrams.

Serialises a DD to a JSON-compatible dictionary (and back) so states and
operators can be checkpointed, diffed, or shipped between processes.  The
format stores each distinct node once (exploiting the sharing that makes
DDs compact), in bottom-up topological order:

```json
{
  "kind": "vector",
  "root": [nodeRef, re, im],
  "nodes": [[level, [childRef, re, im], [childRef, re, im]], ...]
}
```

``nodeRef`` is an index into ``nodes`` or ``-1`` for the terminal; zero
edges are stored as ``[-1, 0.0, 0.0]``.  Loading re-interns everything
through the target package, so loaded diagrams share structure with the
diagrams already living there.

Deserialisation is *defensive*: checkpoints live on disk where they can be
truncated or corrupted, so every structural assumption (``nodes`` present
and a list, per-node arity, child references pointing strictly backwards
into already-built nodes) is validated with a :class:`ValueError` naming
the offending node index -- never a bare ``KeyError``/``IndexError``.
"""

from __future__ import annotations

import json
from typing import Any

from .edge import Edge
from .node import MatrixNode
from .package import Package

__all__ = ["serialize_dd", "deserialize_dd", "dumps_dd", "loads_dd"]

_TERMINAL_REF = -1


def serialize_dd(edge: Edge) -> dict[str, Any]:
    """Serialise a vector or matrix DD to a JSON-compatible dict."""
    kind = "matrix" if isinstance(edge.node, MatrixNode) else "vector"
    nodes: list[list] = []
    index_of: dict[int, int] = {}

    def visit(node) -> int:
        if node.level == -1:
            return _TERMINAL_REF
        found = index_of.get(id(node))
        if found is not None:
            return found
        encoded_children = []
        for child in node.edges:
            if child.weight == 0:
                encoded_children.append([_TERMINAL_REF, 0.0, 0.0])
            else:
                encoded_children.append([visit(child.node),
                                         child.weight.real,
                                         child.weight.imag])
        index = len(nodes)
        index_of[id(node)] = index
        nodes.append([node.level, *encoded_children])
        return index

    if edge.weight == 0:
        root = [_TERMINAL_REF, 0.0, 0.0]
    else:
        root = [visit(edge.node), edge.weight.real, edge.weight.imag]
    return {"kind": kind, "root": root, "nodes": nodes}


def _decode_edge_ref(encoded, where: str) -> tuple[int, complex]:
    """Validate one ``[ref, re, im]`` triple; return ``(ref, weight)``."""
    if (not isinstance(encoded, (list, tuple)) or len(encoded) != 3):
        raise ValueError(f"malformed edge {encoded!r} at {where}: "
                         "expected [nodeRef, re, im]")
    ref, re, im = encoded
    if not isinstance(ref, int) or isinstance(ref, bool):
        raise ValueError(f"malformed node reference {ref!r} at {where}: "
                         "expected an integer")
    try:
        weight = complex(float(re), float(im))
    except (TypeError, ValueError):
        raise ValueError(f"malformed edge weight ({re!r}, {im!r}) "
                         f"at {where}") from None
    return ref, weight


def deserialize_dd(package: Package, payload: dict[str, Any]) -> Edge:
    """Rebuild a DD inside ``package`` from :func:`serialize_dd` output.

    Raises :class:`ValueError` (naming the offending node index) on any
    structural corruption: missing/non-list ``nodes``, wrong per-node
    arity, or child references that do not point strictly backwards into
    already-built nodes.  A truncated or hand-edited checkpoint therefore
    fails loudly instead of surfacing a ``KeyError`` deep in the package.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"DD payload must be a dict, "
                         f"got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in ("vector", "matrix"):
        raise ValueError(f"unknown DD kind {kind!r}")
    make_node = package.make_matrix_node if kind == "matrix" \
        else package.make_vector_node
    arity = 4 if kind == "matrix" else 2
    nodes = payload.get("nodes")
    if nodes is None:
        raise ValueError("DD payload has no 'nodes' list")
    if not isinstance(nodes, list):
        raise ValueError(f"'nodes' must be a list, "
                         f"got {type(nodes).__name__}")
    if "root" not in payload:
        raise ValueError("DD payload has no 'root' edge")
    rebuilt: list[Edge] = []

    def edge_from(encoded, where: str) -> Edge:
        ref, weight = _decode_edge_ref(encoded, where)
        if weight == 0:
            return package.zero
        if ref == _TERMINAL_REF:
            return package.terminal_edge(weight)
        if not 0 <= ref < len(rebuilt):
            raise ValueError(
                f"dangling node reference {ref} at {where}: child "
                f"references must point backwards into the "
                f"{len(rebuilt)} node(s) built so far")
        return package._scaled(rebuilt[ref], weight)

    for index, entry in enumerate(nodes):
        if not isinstance(entry, (list, tuple)) or len(entry) < 1:
            raise ValueError(f"malformed entry at node index {index}: "
                             f"expected [level, *children], got {entry!r}")
        level, *children = entry
        if not isinstance(level, int) or isinstance(level, bool) \
                or level < 0:
            raise ValueError(f"node index {index} has invalid level "
                             f"{level!r}")
        if len(children) != arity:
            raise ValueError(f"node index {index} (level {level}) has "
                             f"{len(children)} children, expected {arity} "
                             f"for kind {kind!r}")
        rebuilt.append(make_node(level, tuple(
            edge_from(child, f"node index {index}, child {position}")
            for position, child in enumerate(children))))
    return edge_from(payload["root"], "root")


def dumps_dd(edge: Edge, indent: int | None = None) -> str:
    """Serialise a DD to a JSON string."""
    return json.dumps(serialize_dd(edge), indent=indent)


def loads_dd(package: Package, text: str) -> Edge:
    """Load a DD from a JSON string produced by :func:`dumps_dd`."""
    return deserialize_dd(package, json.loads(text))
