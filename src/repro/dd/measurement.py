"""Measurement on state-vector DDs.

Provides the probabilistic operations a simulator needs on top of the pure
linear algebra: single-qubit measurement with state collapse (required by
the semiclassical order-finding circuit of Shor's algorithm), full-register
sampling, and probability queries.  All randomness is injected through a
``random.Random`` (or numpy generator-like) object so runs are reproducible.
"""

from __future__ import annotations

import math
from random import Random

from .edge import Edge
from .node import VectorNode
from .package import Package

__all__ = [
    "qubit_probability",
    "measure_qubit",
    "project_qubit",
    "sample_bitstring",
    "sample_counts",
    "all_probabilities",
]


def _norm2_map(state: Edge) -> dict[int, float]:
    """Squared norm of the (weight-1) sub-vector under each node."""
    cache: dict[int, float] = {}

    def norm2(node) -> float:
        if node.level == -1:
            return 1.0
        ident = id(node)
        found = cache.get(ident)
        if found is not None:
            return found
        total = 0.0
        for child in node.edges:
            if child.weight != 0:
                total += abs(child.weight) ** 2 * norm2(child.node)
        cache[ident] = total
        return total

    if state.weight != 0:
        norm2(state.node)
    return cache


def qubit_probability(package: Package, state: Edge, qubit: int) -> float:
    """Probability that measuring ``qubit`` of ``state`` yields ``1``.

    ``state`` need not be normalised; the result is normalised by
    ``<state|state>``.
    """
    if state.weight == 0:
        raise ValueError("cannot measure the zero vector")
    if not 0 <= qubit <= state.node.level:
        raise ValueError(f"qubit {qubit} out of range")
    norms = _norm2_map(state)

    def norm2(node) -> float:
        return 1.0 if node.level == -1 else norms[id(node)]

    cache: dict[int, float] = {}

    def one_mass(node) -> float:
        """Unnormalised probability mass with ``qubit = 1`` under ``node``."""
        if node.level == qubit:
            child = node.edges[1]
            if child.weight == 0:
                return 0.0
            return abs(child.weight) ** 2 * norm2(child.node)
        ident = id(node)
        found = cache.get(ident)
        if found is not None:
            return found
        total = 0.0
        for child in node.edges:
            if child.weight != 0:
                total += abs(child.weight) ** 2 * one_mass(child.node)
        cache[ident] = total
        return total

    total_norm = abs(state.weight) ** 2 * norm2(state.node)
    if total_norm <= 0:
        raise ValueError("state has zero norm")
    return min(1.0, max(0.0,
                        abs(state.weight) ** 2 * one_mass(state.node) / total_norm))


def project_qubit(package: Package, state: Edge, qubit: int, value: int,
                  renormalise: bool = True) -> Edge:
    """Project ``state`` onto ``qubit = value`` (collapse after measurement).

    Returns the zero edge if the outcome has no support.  With
    ``renormalise`` (the default) the result is scaled back to unit norm.
    """
    if value not in (0, 1):
        raise ValueError("measurement value must be 0 or 1")
    cache: dict[int, Edge] = {}

    def project(node) -> Edge:
        if node.level < qubit:
            # Only reachable through zero stubs; cannot happen for the
            # quasi-reduced non-zero paths this walks.
            return package.one
        ident = id(node)
        found = cache.get(ident)
        if found is not None:
            return found
        if node.level == qubit:
            kept = node.edges[value]
            children = (kept, package.zero) if value == 0 \
                else (package.zero, kept)
            result = package.make_vector_node(node.level, children)
        else:
            children = []
            for child in node.edges:
                if child.weight == 0:
                    children.append(package.zero)
                else:
                    sub = project(child.node)
                    children.append(package._scaled(sub, child.weight))
            result = package.make_vector_node(node.level, tuple(children))
        cache[ident] = result
        return result

    if state.weight == 0:
        return package.zero
    projected = package._scaled(project(state.node), state.weight)
    if projected.weight == 0 or not renormalise:
        return projected
    norm = math.sqrt(package.squared_norm(projected))
    return package._scaled(projected, 1.0 / norm)


def measure_qubit(package: Package, state: Edge, qubit: int,
                  rng: Random) -> tuple[int, Edge, float]:
    """Measure one qubit: returns ``(outcome, collapsed_state, p_of_outcome)``."""
    p_one = qubit_probability(package, state, qubit)
    outcome = 1 if rng.random() < p_one else 0
    probability = p_one if outcome == 1 else 1.0 - p_one
    collapsed = project_qubit(package, state, qubit, outcome)
    if collapsed.weight == 0:
        # Numerical corner: the sampled branch had (within tolerance) zero
        # support.  Fall back to the other branch.
        outcome = 1 - outcome
        probability = 1.0 - probability
        collapsed = project_qubit(package, state, qubit, outcome)
    return outcome, collapsed, probability


def sample_bitstring(package: Package, state: Edge, rng: Random) -> int:
    """Draw one basis-state index from ``|amplitude|^2`` without collapsing."""
    if state.weight == 0:
        raise ValueError("cannot sample from the zero vector")
    norms = _norm2_map(state)

    def norm2(node) -> float:
        return 1.0 if node.level == -1 else norms[id(node)]

    index = 0
    node = state.node
    while node.level != -1:
        masses = []
        for child in node.edges:
            if child.weight == 0:
                masses.append(0.0)
            else:
                masses.append(abs(child.weight) ** 2 * norm2(child.node))
        total = masses[0] + masses[1]
        bit = 1 if rng.random() * total >= masses[0] else 0
        if masses[bit] == 0.0:
            bit = 1 - bit
        if bit:
            index |= 1 << node.level
        node = node.edges[bit].node
    return index


def sample_counts(package: Package, state: Edge, shots: int,
                  rng: Random) -> dict[int, int]:
    """Histogram of ``shots`` independent basis-state samples."""
    counts: dict[int, int] = {}
    for _ in range(shots):
        outcome = sample_bitstring(package, state, rng)
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def all_probabilities(package: Package, state: Edge,
                      num_qubits: int) -> list[float]:
    """Dense list of all ``2^n`` outcome probabilities (small systems only)."""
    return [abs(package.amplitude(state, i)) ** 2
            for i in range(1 << num_qubits)]
