"""Constructors for common quantum states, directly as DDs.

Every state here is built *without* simulating a preparation circuit --
construction is linear (or near-linear) in the qubit count, which is itself
a demonstration of the representational power the paper builds on.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .edge import Edge
from .package import Package

__all__ = ["product_state", "uniform_superposition", "ghz_state", "w_state",
           "random_structured_state"]


def product_state(package: Package,
                  qubit_amplitudes: Sequence[tuple[complex, complex]]) -> Edge:
    """``(a_0|0> + b_0|1>) (x) ... `` -- one node per qubit, always.

    ``qubit_amplitudes[k]`` is the ``(alpha, beta)`` pair of qubit ``k``
    (little-endian: entry 0 is the least significant qubit).
    """
    edge = package.one
    for level, (alpha, beta) in enumerate(qubit_amplitudes):
        if alpha == 0 and beta == 0:
            raise ValueError(f"qubit {level} has a zero amplitude pair")
        children = (package._scaled(edge, complex(alpha)),
                    package._scaled(edge, complex(beta)))
        edge = package.make_vector_node(level, children)
    return edge


def uniform_superposition(package: Package, num_qubits: int) -> Edge:
    """``H^{(x)n} |0...0>``: the state Grover starts from (n nodes)."""
    amplitude = 1 / math.sqrt(2)
    return product_state(package,
                         [(amplitude, amplitude)] * num_qubits)


def ghz_state(package: Package, num_qubits: int) -> Edge:
    """``(|0...0> + |1...1>) / sqrt(2)`` -- 2n - 1 nodes."""
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    zeros = package.one
    ones = package.one
    for level in range(num_qubits - 1):
        zeros = package.make_vector_node(level, (zeros, package.zero))
        ones = package.make_vector_node(level, (package.zero, ones))
    top = package.make_vector_node(
        num_qubits - 1,
        (package._scaled(zeros, 1 / math.sqrt(2)),
         package._scaled(ones, 1 / math.sqrt(2))))
    return top


def w_state(package: Package, num_qubits: int) -> Edge:
    """Equal superposition of all weight-1 basis states -- O(n) nodes.

    Built bottom-up: on ``m`` qubits the W-type block decomposes as
    ``|0>(x)W_m`` and ``|1>(x)Zero_m`` halves, both of which recur.
    """
    if num_qubits < 1:
        raise ValueError("W state needs at least one qubit")
    amplitude = 1 / math.sqrt(num_qubits)
    # all_zero[m]: |0...0> on m qubits; single[m]: sum over weight-1 states
    all_zero = package.one
    single = package.zero
    for level in range(num_qubits):
        new_single_children = (
            single,                                   # this qubit 0: below has the 1
            package._scaled(all_zero, 1.0),           # this qubit is the 1
        )
        single = package.make_vector_node(level, new_single_children)
        all_zero = package.make_vector_node(level, (all_zero, package.zero))
    return package._scaled(single, amplitude)


def random_structured_state(package: Package, num_qubits: int,
                            rng, branches: int = 3) -> Edge:
    """A random state with tunable DD size (useful for tests/benchmarks).

    Superposes ``branches`` random computational basis states with random
    complex amplitudes; the DD has at most ``branches * num_qubits`` nodes.
    """
    if branches < 1:
        raise ValueError("need at least one branch")
    total = package.zero
    for _ in range(branches):
        index = rng.randrange(1 << num_qubits)
        amplitude = complex(rng.uniform(-1, 1), rng.uniform(-1, 1))
        term = package._scaled(package.basis_state(num_qubits, index),
                               amplitude)
        total = package.add_vectors(total, term)
    if total.weight == 0:  # pragma: no cover - astronomically unlikely
        return package.basis_state(num_qubits, 0)
    norm = math.sqrt(package.squared_norm(total))
    return package._scaled(total, 1 / norm)
