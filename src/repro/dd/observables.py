"""Expectation values of observables on state DDs.

Computing ``<psi| O |psi>`` is a matrix-vector multiplication followed by
an inner product -- both native DD operations.  For the common case of
Pauli-string observables the operator DD is linear in the qubit count (one
node per qubit, exactly like a gate DD), so expectation values cost one
cheap MxV against the state.  Diagonal observables (e.g. Ising/MaxCut cost
functions) avoid even that: their expectation is a weighted traversal of
the state DD's probability mass.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from .edge import Edge
from .package import Package

__all__ = ["PAULI_MATRICES", "pauli_string_dd", "expectation_value",
           "pauli_expectation", "diagonal_expectation"]

PAULI_MATRICES: dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_string_dd(package: Package, pauli: str | Mapping[int, str],
                    num_qubits: int) -> Edge:
    """Matrix DD of a Pauli string.

    ``pauli`` is either a string like ``"XZY"`` read *most-significant
    qubit first* (so ``"XZ"`` on two qubits puts X on qubit 1 and Z on
    qubit 0), or a mapping ``{qubit: "X"|"Y"|"Z"}`` with identity
    everywhere else.  The resulting DD has one node per qubit.
    """
    if isinstance(pauli, str):
        if len(pauli) != num_qubits:
            raise ValueError(f"Pauli string of length {len(pauli)} does not "
                             f"match {num_qubits} qubits")
        per_qubit = {num_qubits - 1 - i: letter.upper()
                     for i, letter in enumerate(pauli)}
    else:
        per_qubit = {int(q): letter.upper() for q, letter in pauli.items()}
        for qubit in per_qubit:
            if not 0 <= qubit < num_qubits:
                raise ValueError(f"qubit {qubit} out of range")
    edge = package.one
    for level in range(num_qubits):
        letter = per_qubit.get(level, "I")
        matrix = PAULI_MATRICES.get(letter)
        if matrix is None:
            raise ValueError(f"unknown Pauli letter {letter!r}")
        children = tuple(
            package._scaled(edge, complex(matrix[row, col]))
            for row in (0, 1) for col in (0, 1)
        )
        edge = package.make_matrix_node(level, children)
    return edge


def expectation_value(package: Package, observable: Edge,
                      state: Edge) -> complex:
    """``<state| observable |state>`` for an arbitrary matrix DD."""
    transformed = package.multiply_matrix_vector(observable, state)
    return package.inner_product(state, transformed)


def pauli_expectation(package: Package, pauli: str | Mapping[int, str],
                      state: Edge, num_qubits: int) -> float:
    """Expectation of a Pauli string; real by hermiticity."""
    observable = pauli_string_dd(package, pauli, num_qubits)
    return expectation_value(package, observable, state).real


def diagonal_expectation(package: Package, state: Edge,
                         value: Callable[[int], float]) -> float:
    """``sum_x |amp(x)|^2 * value(x)`` without touching a matrix DD.

    ``value`` maps a basis index to the observable's diagonal entry (e.g. a
    MaxCut cut size).  Because ``value`` may depend on *all* bits of the
    index, the traversal enumerates the DD's non-zero amplitude paths: cheap
    for structured states (basis states, GHZ, Grover, Shor), exponential
    for dense superpositions -- use :func:`pauli_expectation` there.
    """
    if state.weight == 0:
        raise ValueError("zero state has no expectation values")
    total = 0.0

    def walk(node, prefix: int, probability: float) -> None:
        nonlocal total
        if probability == 0.0:
            return
        if node.level == -1:
            total += probability * value(prefix)
            return
        for bit, child in enumerate(node.edges):
            if child.weight != 0:
                walk(child.node, prefix | (bit << node.level),
                     probability * abs(child.weight) ** 2)

    walk(state.node, 0, abs(state.weight) ** 2)
    return total
