"""Reproducible kernel benchmark harness (``python -m repro bench``).

Measures the sequential-simulation kernel on a fixed set of workloads with
fixed seeds and emits a machine-readable JSON report (``BENCH_kernel.json``)
containing, per workload:

* wall-clock time (best and median over ``--repeats`` runs) for both the
  local-gate fast path (``Package.apply_gate``) and the paper-literal
  matrix pathway (explicit gate DD + one matrix-vector product per gate);
* the machine-independent recursion counters of both pathways;
* per-compute-table cache hit rates from :meth:`Package.cache_stats`.

The report is the "receipt" for the kernel optimisations: wall-clock claims
can be re-derived on any machine with one command, and counter/cache-rate
fields change only when the kernel itself changes.

Workloads (``--smoke`` swaps in smaller variants for CI):

========== ============================== =============================
name       full                           smoke
========== ============================== =============================
grover     10 qubits, marked 311          8 qubits, marked 77
qft        14 qubits                      10 qubits
supremacy  3x4 grid, depth 10, seed 1     3x3 grid, depth 8, seed 1
clifford   12 qubits, depth 16, seed 2    10 qubits, depth 10, seed 2
========== ============================== =============================
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
from dataclasses import dataclass
from typing import Callable

from .circuit.circuit import QuantumCircuit
from .simulation.engine import SimulationEngine
from .simulation.strategies import SequentialStrategy

__all__ = ["WORKLOADS", "SMOKE_WORKLOADS", "run_bench", "main"]

DEFAULT_OUTPUT = "BENCH_kernel.json"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Workload:
    """One named benchmark circuit with a deterministic builder."""

    name: str
    description: str
    build: Callable[[], QuantumCircuit]


def _grover(num_qubits: int, marked: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.grover import grover_circuit
        return grover_circuit(num_qubits, marked).circuit
    return build


def _qft(num_qubits: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.qft import qft_circuit
        return qft_circuit(num_qubits)
    return build


def _supremacy(rows: int, cols: int, depth: int,
               seed: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.supremacy import supremacy_circuit
        return supremacy_circuit(rows, cols, depth, seed).circuit
    return build


def _clifford(num_qubits: int, depth: int,
              seed: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.clifford import random_clifford_circuit
        return random_clifford_circuit(num_qubits, depth, seed=seed).circuit
    return build


WORKLOADS: list[Workload] = [
    Workload("grover_10", "Grover search, 10 qubits, marked element 311",
             _grover(10, 311)),
    Workload("qft_14", "quantum Fourier transform, 14 qubits", _qft(14)),
    Workload("supremacy_3x4_d10",
             "Boixo-style random circuit, 3x4 grid, depth 10, seed 1",
             _supremacy(3, 4, 10, 1)),
    Workload("clifford_12_d16",
             "random {H,S,CX} circuit, 12 qubits, depth 16, seed 2",
             _clifford(12, 16, 2)),
]

SMOKE_WORKLOADS: list[Workload] = [
    Workload("grover_8", "Grover search, 8 qubits, marked element 77",
             _grover(8, 77)),
    Workload("qft_10", "quantum Fourier transform, 10 qubits", _qft(10)),
    Workload("supremacy_3x3_d8",
             "Boixo-style random circuit, 3x3 grid, depth 8, seed 1",
             _supremacy(3, 3, 8, 1)),
    Workload("clifford_10_d10",
             "random {H,S,CX} circuit, 10 qubits, depth 10, seed 2",
             _clifford(10, 10, 2)),
]


def _counters_dict(counters) -> dict:
    return {
        "add_recursions": counters.add_recursions,
        "mult_mv_recursions": counters.mult_mv_recursions,
        "mult_mm_recursions": counters.mult_mm_recursions,
        "apply_gate_recursions": counters.apply_gate_recursions,
        "nodes_created": counters.nodes_created,
        "total_recursions": counters.total_recursions(),
    }


def _compute_hit_rates(cache_stats: dict) -> dict:
    """Per-table lookup/hit-rate summary, dropping never-used tables."""
    out = {}
    for name, stats in cache_stats["compute"].items():
        if stats["lookups"]:
            out[name] = {"lookups": stats["lookups"],
                         "hit_rate": stats["hit_rate"],
                         "collisions": stats["collisions"]}
    out["unique_vectors"] = cache_stats["unique"]["vectors"]["hit_rate"]
    out["complex_table"] = cache_stats["complex"]["hit_rate"]
    return out


def _measure(circuit: QuantumCircuit, use_local_apply: bool,
             repeats: int) -> dict:
    """Time ``repeats`` fresh-engine sequential runs of ``circuit``."""
    times = []
    stats = None
    cache_stats = None
    for _ in range(repeats):
        engine = SimulationEngine(use_local_apply=use_local_apply)
        result = engine.simulate(circuit, SequentialStrategy())
        stats = result.statistics
        cache_stats = engine.package.cache_stats()
        times.append(stats.wall_time_seconds)
    return {
        "wall_seconds_best": round(min(times), 6),
        "wall_seconds_median": round(statistics.median(times), 6),
        "matrix_vector_mults": stats.matrix_vector_mults,
        "local_gate_applications": stats.local_gate_applications,
        "peak_state_nodes": stats.peak_state_nodes,
        "final_state_nodes": stats.final_state_nodes,
        "counters": _counters_dict(stats.counters),
        "cache": _compute_hit_rates(cache_stats),
    }


def run_bench(smoke: bool = False, repeats: int = 3,
              workload_names: list[str] | None = None) -> dict:
    """Run the kernel benchmark suite and return the report dict."""
    workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    if workload_names:
        selected = [w for w in workloads if w.name in workload_names]
        unknown = set(workload_names) - {w.name for w in selected}
        if unknown:
            raise KeyError(f"unknown workload(s): {sorted(unknown)}")
        workloads = selected
    report = {
        "schema": SCHEMA_VERSION,
        "profile": "smoke" if smoke else "full",
        "repeats": repeats,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": [],
    }
    for workload in workloads:
        circuit = workload.build()
        fast = _measure(circuit, use_local_apply=True, repeats=repeats)
        matrix = _measure(circuit, use_local_apply=False, repeats=repeats)
        speedup = (matrix["wall_seconds_best"] / fast["wall_seconds_best"]
                   if fast["wall_seconds_best"] else 0.0)
        report["workloads"].append({
            "name": workload.name,
            "description": workload.description,
            "num_qubits": circuit.num_qubits,
            "num_operations": circuit.num_operations(),
            "fast_path": fast,
            "matrix_path": matrix,
            "speedup_fast_vs_matrix": round(speedup, 3),
        })
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Reproducible DD-kernel benchmark (fixed seeds).")
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads, suitable for CI (<60s)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per workload/pathway (default 3)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT}; "
                             "'-' prints to stdout)")
    parser.add_argument("--workload", action="append", dest="workloads",
                        help="run only this workload (repeatable)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    try:
        report = run_bench(smoke=args.smoke, repeats=args.repeats,
                           workload_names=args.workloads)
    except KeyError as exc:
        parser.error(str(exc).strip('"'))
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        for w in report["workloads"]:
            print(f"{w['name']:>18}: fast {w['fast_path']['wall_seconds_best']:.4f}s"
                  f"  matrix {w['matrix_path']['wall_seconds_best']:.4f}s"
                  f"  (x{w['speedup_fast_vs_matrix']:.2f})")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
