"""Reproducible kernel benchmark harness (``python -m repro bench``).

Measures the sequential-simulation kernel on a fixed set of workloads with
fixed seeds and emits a machine-readable JSON report (``BENCH_kernel.json``)
containing, per workload:

* wall-clock time (best and median over ``--repeats`` runs) for both the
  local-gate fast path (``Package.apply_gate``) and the paper-literal
  matrix pathway (explicit gate DD + one matrix-vector product per gate);
* the machine-independent recursion counters of both pathways;
* per-compute-table cache hit rates from :meth:`Package.cache_stats`;
* garbage-collection telemetry (collections, nodes freed, pause time).

The report also carries a ``reorder`` section: the qubit-pairing worst
case (GHZ-style pairs whose natural order keeps every pair maximally far
apart in the variable order) run once under the circuit's natural order and
once with periodic sifting enabled.  The sifted arm must reproduce the
ordered arm's state at fidelity >= 1 - 1e-9 -- the receipt for dynamic
variable reordering -- and the recorded node counts show the
exponential-to-linear collapse sifting buys on this family.

The report also carries a ``thrash`` section: a dense supremacy prefix
followed by a long tail of cheap diagonal gates, run with the node limit
pinned *below* the reachable working set.  The fixed-threshold arm
(``growth_factor=1.0``, the pre-governor behaviour) re-collects every step;
the governed arm grows its threshold past the working set after the first
futile collection.  The recorded speedup and fidelity are the receipt for
the GC-thrash fix.

The report is the "receipt" for the kernel optimisations: wall-clock claims
can be re-derived on any machine with one command, and counter/cache-rate
fields change only when the kernel itself changes.

``--trace PATH`` additionally performs one untimed traced run per workload,
appending per-step/per-GC events (each tagged with its workload name) to a
single JSON-Lines file -- see :mod:`repro.simulation.trace` for the schema.

Workloads (``--smoke`` swaps in smaller variants for CI):

========== ============================== =============================
name       full                           smoke
========== ============================== =============================
grover     10 qubits, marked 311          8 qubits, marked 77
qft        14 qubits                      10 qubits
supremacy  3x4 grid, depth 10, seed 1     3x3 grid, depth 8, seed 1
clifford   12 qubits, depth 16, seed 2    10 qubits, depth 10, seed 2
========== ============================== =============================
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass
from random import Random
from typing import Callable

from .circuit.circuit import QuantumCircuit
from .dd.package import Package
from .simulation.engine import SimulationEngine
from .simulation.memory import MemoryGovernor
from .simulation.strategies import SequentialStrategy
from .simulation.trace import JsonlTraceSink, trace_summary

__all__ = ["WORKLOADS", "SMOKE_WORKLOADS", "thrash_circuit", "run_bench",
           "main"]

DEFAULT_OUTPUT = "BENCH_kernel.json"
SCHEMA_VERSION = 4


@dataclass(frozen=True)
class Workload:
    """One named benchmark circuit with a deterministic builder."""

    name: str
    description: str
    build: Callable[[], QuantumCircuit]


def _grover(num_qubits: int, marked: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.grover import grover_circuit
        return grover_circuit(num_qubits, marked).circuit
    return build


def _qft(num_qubits: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.qft import qft_circuit
        return qft_circuit(num_qubits)
    return build


def _supremacy(rows: int, cols: int, depth: int,
               seed: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.supremacy import supremacy_circuit
        return supremacy_circuit(rows, cols, depth, seed).circuit
    return build


def _clifford(num_qubits: int, depth: int,
              seed: int) -> Callable[[], QuantumCircuit]:
    def build() -> QuantumCircuit:
        from .algorithms.clifford import random_clifford_circuit
        return random_clifford_circuit(num_qubits, depth, seed=seed).circuit
    return build


WORKLOADS: list[Workload] = [
    Workload("grover_10", "Grover search, 10 qubits, marked element 311",
             _grover(10, 311)),
    Workload("qft_14", "quantum Fourier transform, 14 qubits", _qft(14)),
    Workload("supremacy_3x4_d10",
             "Boixo-style random circuit, 3x4 grid, depth 10, seed 1",
             _supremacy(3, 4, 10, 1)),
    Workload("clifford_12_d16",
             "random {H,S,CX} circuit, 12 qubits, depth 16, seed 2",
             _clifford(12, 16, 2)),
]

SMOKE_WORKLOADS: list[Workload] = [
    Workload("grover_8", "Grover search, 8 qubits, marked element 77",
             _grover(8, 77)),
    Workload("qft_10", "quantum Fourier transform, 10 qubits", _qft(10)),
    Workload("supremacy_3x3_d8",
             "Boixo-style random circuit, 3x3 grid, depth 8, seed 1",
             _supremacy(3, 3, 8, 1)),
    Workload("clifford_10_d10",
             "random {H,S,CX} circuit, 10 qubits, depth 10, seed 2",
             _clifford(10, 10, 2)),
]


def thrash_circuit(rows: int, cols: int, depth: int, tail: int,
                   seed: int) -> QuantumCircuit:
    """Dense supremacy prefix + a long tail of cheap diagonal gates.

    The prefix builds a large, fully-reachable state DD; the tail then
    applies ``tail`` near-O(1) local diagonal gates (t/s/rz cycling over the
    top three qubits).  With a node limit below the prefix's working set,
    a fixed GC threshold re-collects on every tail step -- each collection
    a full mark-sweep that frees only the previous step's handful of dead
    nodes -- which is exactly the thrash regime the memory governor fixes.
    """
    from .algorithms.supremacy import supremacy_circuit
    base = supremacy_circuit(rows, cols, depth, seed).circuit
    n = base.num_qubits
    circuit = QuantumCircuit(
        n, name=f"thrash_{rows}x{cols}_d{depth}_t{tail}")
    circuit.extend(base.instructions)
    rng = Random(seed + 1)
    for i in range(tail):
        qubit = n - 1 - (i % 3)
        kind = rng.randrange(3)
        if kind == 0:
            circuit.t(qubit)
        elif kind == 1:
            circuit.s(qubit)
        else:
            circuit.rz(rng.random() * 3.0, qubit)
    return circuit


#: thrash-scenario configuration: (rows, cols, depth, tail, seed, node_limit)
#: -- the node limit must sit *below* the prefix's reachable working set,
#: or neither arm ever re-collects and the comparison is vacuous.
THRASH_CONFIG = {
    "full": (3, 4, 10, 2000, 1, 256),
    "smoke": (3, 3, 8, 800, 1, 16),
}


def _counters_dict(counters) -> dict:
    return {
        "add_recursions": counters.add_recursions,
        "mult_mv_recursions": counters.mult_mv_recursions,
        "mult_mm_recursions": counters.mult_mm_recursions,
        "apply_gate_recursions": counters.apply_gate_recursions,
        "nodes_created": counters.nodes_created,
        "total_recursions": counters.total_recursions(),
    }


def _compute_hit_rates(cache_stats: dict) -> dict:
    """Per-table lookup/hit-rate summary, dropping never-used tables."""
    out = {}
    for name, stats in cache_stats["compute"].items():
        if stats["lookups"]:
            out[name] = {"lookups": stats["lookups"],
                         "hit_rate": stats["hit_rate"],
                         "collisions": stats["collisions"]}
    out["unique_vectors"] = cache_stats["unique"]["vectors"]["hit_rate"]
    out["complex_table"] = cache_stats["complex"]["hit_rate"]
    return out


def _measure(circuit: QuantumCircuit, use_local_apply: bool,
             repeats: int, gc_limit: int | None = None,
             audit: bool = False,
             package_factory: Callable | None = None) -> tuple[dict, object]:
    """Time ``repeats`` fresh-engine sequential runs of ``circuit``.

    ``package_factory`` supplies a fresh DD package per run (used for the
    iterative-kernel arm); the default is the engine's own recursive-kernel
    package.  Returns ``(entry, last_result)`` -- the result backs the
    cross-arm fidelity receipt.
    """
    times = []
    stats = None
    cache_stats = None
    for _ in range(repeats):
        package = package_factory() if package_factory is not None else None
        engine = SimulationEngine(package=package,
                                  use_local_apply=use_local_apply,
                                  gc_node_limit=gc_limit or 500_000)
        result = engine.simulate(circuit, SequentialStrategy())
        stats = result.statistics
        cache_stats = engine.package.cache_stats()
        times.append(stats.wall_time_seconds)
    if audit:
        # Untimed integrity audit of the final measured package: a kernel
        # change that corrupts canonicity should fail the benchmark, not
        # just skew its numbers.
        violations = engine.package.check_invariants([result.state])
        if violations:
            raise RuntimeError(
                f"{circuit.name}: DD integrity audit failed after measured "
                f"run: {violations[0]} (+{len(violations) - 1} more)")
    entry = {
        "wall_seconds_best": round(min(times), 6),
        "wall_seconds_median": round(statistics.median(times), 6),
        "matrix_vector_mults": stats.matrix_vector_mults,
        "local_gate_applications": stats.local_gate_applications,
        "peak_state_nodes": stats.peak_state_nodes,
        "final_state_nodes": stats.final_state_nodes,
        "counters": _counters_dict(stats.counters),
        "cache": _compute_hit_rates(cache_stats),
        "gc": stats.gc.as_dict(),
    }
    if engine.package.flat is not None:
        # Iterative-kernel arm: record the dense-block telemetry so the
        # report shows how much of the run left the DD representation.
        entry["dense"] = engine.package.flat.stats()["dense"]
    return entry, result


def _thrash_arm(circuit: QuantumCircuit,
                governor: MemoryGovernor) -> tuple[dict, "SimulationResult"]:
    """One timed thrash run.  Exact per-step state sizing is off so the
    arms differ only in GC policy, not in statistics overhead."""
    engine = SimulationEngine(governor=governor, track_state_size=False)
    start = time.perf_counter()
    result = engine.simulate(circuit, SequentialStrategy())
    wall = time.perf_counter() - start
    stats = result.statistics
    return {
        "wall_seconds": round(wall, 6),
        "gc": stats.gc.as_dict(),
        "governor": governor.stats(),
        "final_state_nodes": stats.final_state_nodes,
    }, result


def _fidelity(a, b, num_qubits: int) -> float:
    """|<a|b>|^2 via amplitude enumeration (results live in different
    packages, so the in-package fidelity helper does not apply)."""
    inner = sum(a.amplitude(i).conjugate() * b.amplitude(i)
                for i in range(1 << num_qubits))
    return abs(inner) ** 2


#: reorder-scenario configuration: (pairs, tail_layers) for the
#: qubit-pairing worst case -- natural order is exponential in ``pairs``,
#: the interleaved order sifting finds is linear.
REORDER_CONFIG = {
    "full": (6, 2),
    "smoke": (4, 2),
}


def _reorder_bench(profile: str) -> dict:
    """A/B the qubit-pairing worst case: natural order vs. periodic sifting."""
    from .algorithms.pairing import pairing_circuit
    from .simulation.reorder import ReorderPolicy
    pairs, tail = REORDER_CONFIG[profile]
    circuit = pairing_circuit(pairs, tail_layers=tail).circuit

    def arm(reorder) -> tuple[dict, "SimulationResult"]:
        engine = SimulationEngine()
        start = time.perf_counter()
        result = engine.simulate(circuit, SequentialStrategy(),
                                 reorder=reorder)
        wall = time.perf_counter() - start
        stats = result.statistics
        return {
            "wall_seconds": round(wall, 6),
            "peak_state_nodes": stats.peak_state_nodes,
            "final_state_nodes": stats.final_state_nodes,
            "reorders": stats.reorders,
            "reorder_nodes_saved": stats.reorder_nodes_saved,
        }, result

    ordered, ref = arm(None)
    sifted, sifted_result = arm(
        ReorderPolicy(mode="every", every=2 * pairs, min_nodes=2))
    fidelity = _fidelity(sifted_result, ref, circuit.num_qubits)
    if fidelity < 1 - 1e-9:
        raise RuntimeError(
            f"{circuit.name}: sifted run diverged from the ordered run "
            f"(fidelity {fidelity!r})")
    ratio = (ordered["final_state_nodes"] / sifted["final_state_nodes"]
             if sifted["final_state_nodes"] else 0.0)
    return {
        "name": circuit.name,
        "description": ("qubit-pairing worst case: natural order vs. "
                        "periodic sifting (every 2*pairs operations)"),
        "num_qubits": circuit.num_qubits,
        "num_operations": circuit.num_operations(),
        "ordered": ordered,
        "sifted": sifted,
        "node_ratio_ordered_vs_sifted": round(ratio, 3),
        "final_permutation": sifted_result.permutation,
        "fidelity_sifted_vs_ordered": fidelity,
    }


def _thrash_bench(profile: str) -> dict:
    """A/B the GC-thrash scenario: fixed threshold vs. adaptive governor."""
    rows, cols, depth, tail, seed, limit = THRASH_CONFIG[profile]
    circuit = thrash_circuit(rows, cols, depth, tail, seed)
    ungoverned, ref = _thrash_arm(circuit, MemoryGovernor(node_limit=None))
    fixed, fixed_result = _thrash_arm(
        circuit, MemoryGovernor(node_limit=limit, growth_factor=1.0))
    governed, governed_result = _thrash_arm(
        circuit, MemoryGovernor(node_limit=limit))
    speedup = (fixed["wall_seconds"] / governed["wall_seconds"]
               if governed["wall_seconds"] else 0.0)
    return {
        "name": circuit.name,
        "description": ("supremacy prefix + diagonal-gate tail, node limit "
                        "below the reachable working set"),
        "num_qubits": circuit.num_qubits,
        "num_operations": circuit.num_operations(),
        "node_limit": limit,
        "ungoverned": ungoverned,
        "fixed_threshold": fixed,
        "governed": governed,
        "speedup_governed_vs_fixed": round(speedup, 3),
        "fidelity_governed_vs_ungoverned": _fidelity(
            governed_result, ref, circuit.num_qubits),
        "fidelity_fixed_vs_ungoverned": _fidelity(
            fixed_result, ref, circuit.num_qubits),
    }


def _traced_run(circuit: QuantumCircuit, name: str, sink: JsonlTraceSink,
                gc_limit: int | None) -> dict:
    """One untimed traced run; events are tagged with the workload name."""
    engine = SimulationEngine(gc_node_limit=gc_limit or 500_000)
    events: list[dict] = []

    def trace(event: dict) -> None:
        events.append(event)
        sink({"workload": name, **event})

    engine.simulate(circuit, SequentialStrategy(), trace=trace)
    return trace_summary(events)


def _workload_entry(workload: Workload, repeats: int,
                    gc_limit: int | None, audit: bool,
                    sink: JsonlTraceSink | None = None) -> dict:
    """Measure one workload (both pathways); runs serially or in a worker.

    All wall-clock numbers come from ``stats.wall_time_seconds``, measured
    inside the engine around the simulation alone -- so per-workload
    timings recorded in a worker process are comparable to serial ones.
    """
    circuit = workload.build()
    fast, fast_result = _measure(circuit, use_local_apply=True,
                                 repeats=repeats, gc_limit=gc_limit,
                                 audit=audit)
    matrix, _ = _measure(circuit, use_local_apply=False,
                         repeats=repeats, gc_limit=gc_limit, audit=audit)
    iterative, it_result = _measure(
        circuit, use_local_apply=True, repeats=repeats, gc_limit=gc_limit,
        audit=audit,
        package_factory=lambda: Package(kernel="iterative",
                                        identity_edges=True))
    speedup = (matrix["wall_seconds_best"] / fast["wall_seconds_best"]
               if fast["wall_seconds_best"] else 0.0)
    speedup_it = (fast["wall_seconds_best"] / iterative["wall_seconds_best"]
                  if iterative["wall_seconds_best"] else 0.0)
    # Cross-kernel fidelity receipt: the iterative (worklist + dense-block)
    # arm must reproduce the recursive fast path's state exactly.  A kernel
    # optimisation that drifts fails the benchmark, not just a test.
    fidelity = _fidelity(it_result, fast_result, circuit.num_qubits)
    if fidelity < 1 - 1e-9:
        raise RuntimeError(
            f"{workload.name}: iterative-kernel state diverged from the "
            f"recursive fast path (fidelity {fidelity!r})")
    entry = {
        "name": workload.name,
        "description": workload.description,
        "num_qubits": circuit.num_qubits,
        "num_operations": circuit.num_operations(),
        "fast_path": fast,
        "matrix_path": matrix,
        "iterative_path": iterative,
        "speedup_fast_vs_matrix": round(speedup, 3),
        "speedup_iterative_vs_fast": round(speedup_it, 3),
        "fidelity_iterative_vs_fast": fidelity,
    }
    if sink is not None:
        entry["trace_summary"] = _traced_run(
            circuit, workload.name, sink, gc_limit)
    return entry


def _bench_worker(name: str, smoke: bool, repeats: int,
                  gc_limit: int | None, audit: bool) -> dict:
    """Pool target: workloads hold closures, so ship the name and rebuild."""
    workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    workload = next(w for w in workloads if w.name == name)
    return _workload_entry(workload, repeats, gc_limit, audit)


def run_bench(smoke: bool = False, repeats: int = 3,
              workload_names: list[str] | None = None,
              gc_limit: int | None = None,
              trace_path: str | None = None,
              audit: bool = False,
              jobs: int = 1) -> dict:
    """Run the kernel benchmark suite and return the report dict.

    ``gc_limit`` overrides the engines' GC node limit (exercises the memory
    governor under a tight budget).  ``trace_path`` adds one untimed traced
    run per workload, appending tagged events to that JSONL file and a
    ``trace_summary`` per workload to the report.  ``audit`` runs the DD
    integrity auditor (untimed) on the final package of each measured arm
    and aborts the benchmark on any violation.  ``jobs`` fans the workloads
    out over that many worker processes (each measures on its own DD
    packages; timings are taken in-worker); the report always lists
    workloads in suite order, and tracing requires ``jobs=1``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and trace_path:
        raise ValueError("tracing requires jobs=1 (a shared JSONL trace "
                         "would interleave across workers)")
    workloads = SMOKE_WORKLOADS if smoke else WORKLOADS
    if workload_names:
        selected = [w for w in workloads if w.name in workload_names]
        unknown = set(workload_names) - {w.name for w in selected}
        if unknown:
            raise KeyError(f"unknown workload(s): {sorted(unknown)}")
        workloads = selected
    report = {
        "schema": SCHEMA_VERSION,
        "profile": "smoke" if smoke else "full",
        "repeats": repeats,
        "gc_limit": gc_limit,
        "audited": audit,
        "jobs": jobs,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": [],
    }
    if jobs > 1 and len(workloads) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(workloads))) as pool:
            # executor.map preserves workload (suite) order in the report
            report["workloads"] = list(pool.map(
                _bench_worker, [w.name for w in workloads],
                [smoke] * len(workloads), [repeats] * len(workloads),
                [gc_limit] * len(workloads), [audit] * len(workloads)))
    else:
        sink = JsonlTraceSink(trace_path) if trace_path else None
        try:
            for workload in workloads:
                report["workloads"].append(_workload_entry(
                    workload, repeats, gc_limit, audit, sink))
        finally:
            if sink is not None:
                sink.close()
    if trace_path:
        report["trace_file"] = trace_path
    # The thrash A/B compares two GC policies on one machine state; running
    # it beside other measurements would contaminate both arms equally in
    # the best case and unevenly in the worst, so it stays serial.
    report["thrash"] = _thrash_bench("smoke" if smoke else "full")
    report["reorder"] = _reorder_bench("smoke" if smoke else "full")
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Reproducible DD-kernel benchmark (fixed seeds).")
    parser.add_argument("--smoke", action="store_true",
                        help="small workloads, suitable for CI (<60s)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per workload/pathway (default 3)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT}; "
                             "'-' prints to stdout)")
    parser.add_argument("--workload", action="append", dest="workloads",
                        help="run only this workload (repeatable)")
    parser.add_argument("--gc-limit", type=int, default=None,
                        help="tight GC node limit for all measured engines "
                             "(exercises the memory governor)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write a per-step JSONL trace of one "
                             "untimed run per workload to PATH")
    parser.add_argument("--audit", action="store_true",
                        help="run the DD integrity auditor (untimed) after "
                             "each measured arm; abort on any violation")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="measure workloads on N worker processes "
                             "(default 1; timings are taken in-worker)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="after measuring, compare against this baseline "
                             "report and exit non-zero on any wall-clock "
                             "regression beyond the threshold")
    parser.add_argument("--compare-threshold", type=float, default=25.0,
                        metavar="PCT",
                        help="regression threshold in percent for --compare "
                             "(default 25)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.gc_limit is not None and args.gc_limit < 1:
        parser.error("--gc-limit must be >= 1")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.jobs > 1 and args.trace:
        parser.error("--trace requires --jobs 1 (a shared JSONL trace "
                     "would interleave across workers)")
    if args.compare_threshold < 0:
        parser.error("--compare-threshold must be >= 0")
    baseline = None
    if args.compare:
        from .bench_compare import load_report
        try:
            # Load before the (minutes-long) measurement so a bad path or
            # malformed baseline fails fast.
            baseline = load_report(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"--compare: {exc}")
    try:
        report = run_bench(smoke=args.smoke, repeats=args.repeats,
                           workload_names=args.workloads,
                           gc_limit=args.gc_limit, trace_path=args.trace,
                           audit=args.audit, jobs=args.jobs)
    except KeyError as exc:
        parser.error(str(exc).strip('"'))
    text = json.dumps(report, indent=2, sort_keys=False)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        for w in report["workloads"]:
            print(f"{w['name']:>18}: fast {w['fast_path']['wall_seconds_best']:.4f}s"
                  f"  matrix {w['matrix_path']['wall_seconds_best']:.4f}s"
                  f"  iter {w['iterative_path']['wall_seconds_best']:.4f}s"
                  f"  (iter x{w['speedup_iterative_vs_fast']:.2f} vs fast)")
        thrash = report["thrash"]
        print(f"{'thrash':>18}: fixed "
              f"{thrash['fixed_threshold']['wall_seconds']:.4f}s"
              f"  governed {thrash['governed']['wall_seconds']:.4f}s"
              f"  (x{thrash['speedup_governed_vs_fixed']:.2f}, "
              f"fidelity {thrash['fidelity_governed_vs_ungoverned']:.12f})")
        reorder = report["reorder"]
        print(f"{'reorder':>18}: ordered "
              f"{reorder['ordered']['final_state_nodes']} nodes"
              f"  sifted {reorder['sifted']['final_state_nodes']} nodes"
              f"  (x{reorder['node_ratio_ordered_vs_sifted']:.2f}, "
              f"fidelity {reorder['fidelity_sifted_vs_ordered']:.12f})")
        if args.trace:
            print(f"trace: {args.trace}")
        print(f"wrote {args.output}")
    if baseline is not None:
        from .bench_compare import compare_reports, format_comparison
        comparison = compare_reports(baseline, report,
                                     threshold_pct=args.compare_threshold)
        print(format_comparison(comparison))
        if not comparison["passed"]:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
