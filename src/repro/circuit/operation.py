"""The elementary instruction of the circuit IR.

An :class:`Operation` is a (multi-)controlled single-qubit gate: one target,
any number of positive/negative controls, and gate parameters.  This mirrors
the operation model of the DD simulator the paper builds on, where e.g. a
Toffoli is a single elementary operation (one DD, one multiplication), not a
decomposition into two-qubit gates.

Operations are immutable and hashable so they can key gate-DD caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .gate import gate_matrix, inverse_gate

__all__ = ["Operation"]


def _normalise_controls(controls) -> tuple[tuple[int, int], ...]:
    """Normalise control specs to a sorted tuple of ``(qubit, value)``."""
    if controls is None:
        return ()
    result = []
    for item in controls:
        if isinstance(item, tuple):
            qubit, value = item
        else:
            qubit, value = item, 1
        qubit = int(qubit)
        value = int(value)
        if value not in (0, 1):
            raise ValueError(f"control value must be 0 or 1, got {value}")
        result.append((qubit, value))
    result.sort()
    qubits = [qubit for qubit, _ in result]
    if len(set(qubits)) != len(qubits):
        raise ValueError(f"duplicate control qubits in {qubits}")
    return tuple(result)


@dataclass(frozen=True)
class Operation:
    """One (multi-)controlled single-qubit gate application."""

    gate: str
    target: int
    controls: tuple[tuple[int, int], ...] = ()
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "controls",
                           _normalise_controls(self.controls))
        object.__setattr__(self, "params", tuple(self.params))
        if any(qubit == self.target for qubit, _ in self.controls):
            raise ValueError(f"qubit {self.target} is both target and control")

    # ------------------------------------------------------------------

    @property
    def control_qubits(self) -> tuple[int, ...]:
        return tuple(qubit for qubit, _ in self.controls)

    def qubits(self) -> tuple[int, ...]:
        """All qubits this operation touches (controls + target)."""
        return self.control_qubits + (self.target,)

    def max_qubit(self) -> int:
        return max(self.qubits())

    def matrix(self) -> np.ndarray:
        """The 2x2 core matrix acting on the target."""
        return gate_matrix(self.gate, self.params)

    def inverse(self) -> "Operation":
        """The adjoint operation (controls are self-inverse)."""
        name, params = inverse_gate(self.gate, self.params)
        return Operation(name, self.target, self.controls, params)

    def control_map(self) -> dict[int, int]:
        """Controls as the ``{qubit: value}`` map the DD builder expects."""
        return dict(self.controls)

    def __str__(self) -> str:
        label = self.gate
        if self.params:
            label += "(" + ",".join(f"{p:g}" for p in self.params) + ")"
        if self.controls:
            marks = ",".join(f"{q}" if v else f"!{q}"
                             for q, v in self.controls)
            return f"{label} q{self.target} ctrl[{marks}]"
        return f"{label} q{self.target}"
