"""Gate decomposition: multi-controlled operations down to 1- and 2-qubit
gates.

The DD simulator applies multi-controlled gates natively (one linear-sized
DD), but real devices -- and the line router in
:mod:`repro.circuit.mapping` -- need one- and two-qubit gates.  This module
provides the standard synthesis chain:

* :func:`zyz_angles` -- any 2x2 unitary as ``e^{i gamma} Rz(phi) Ry(theta)
  Rz(lam)`` (the ``gu`` gate's parametrisation);
* :func:`decompose_controlled_u` -- a singly-controlled arbitrary gate as
  CX + single-qubit gates (the textbook "ABC" construction);
* :func:`decompose_ccu` -- a doubly-controlled gate via its controlled
  square root (Barenco et al. construction);
* :func:`decompose_mcx` -- k-controlled X via a Toffoli V-chain over
  ancilla qubits;
* :func:`decompose_to_two_qubit` -- a whole-circuit pass producing an
  equivalent circuit (possibly with ancillas) whose operations touch at
  most two qubits.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from .circuit import QuantumCircuit, RepeatedBlock
from .operation import Operation

__all__ = ["zyz_angles", "matrix_sqrt_2x2", "decompose_controlled_u",
           "decompose_ccu", "decompose_mcx", "decompose_to_two_qubit"]


def zyz_angles(matrix) -> tuple[float, float, float, float]:
    """ZYZ Euler angles: ``matrix = e^{i gamma} U(theta, phi, lam)``.

    Returns ``(theta, phi, lam, gamma)`` such that
    ``gate_matrix("gu", result)`` reproduces ``matrix`` exactly (for any
    2x2 unitary).
    """
    u = np.asarray(matrix, dtype=complex)
    if u.shape != (2, 2):
        raise ValueError("zyz_angles needs a 2x2 matrix")
    determinant = u[0, 0] * u[1, 1] - u[0, 1] * u[1, 0]
    if abs(abs(determinant) - 1.0) > 1e-9 or \
            not np.allclose(u @ u.conj().T, np.eye(2), atol=1e-9):
        raise ValueError("matrix is not unitary")
    # factor the global phase: det(e^{-i gamma} u) = 1
    gamma = cmath.phase(determinant) / 2.0
    su = u * cmath.exp(-1j * gamma)
    # su = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #       [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    cos_half = min(1.0, abs(su[0, 0]))
    theta = 2.0 * math.acos(cos_half)
    if abs(su[0, 0]) > 1e-12 and abs(su[1, 0]) > 1e-12:
        plus = 2.0 * cmath.phase(su[1, 1])
        minus = 2.0 * cmath.phase(su[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(su[0, 0]) > 1e-12:   # diagonal: theta ~ 0
        phi = 2.0 * cmath.phase(su[1, 1])
        lam = 0.0
    else:                          # anti-diagonal: theta ~ pi
        phi = 2.0 * cmath.phase(su[1, 0])
        lam = 0.0
    # the SU(2) factorisation carries e^{-i(phi+lam)/2} into gamma
    gamma_full = gamma - (phi + lam) / 2.0
    return (theta, phi, lam, gamma_full)


def matrix_sqrt_2x2(matrix) -> np.ndarray:
    """Principal square root of a 2x2 unitary (eigen decomposition)."""
    u = np.asarray(matrix, dtype=complex)
    values, vectors = np.linalg.eig(u)
    roots = np.sqrt(values.astype(complex))
    return vectors @ np.diag(roots) @ np.linalg.inv(vectors)


def _gu_op(matrix, target: int, controls=()) -> Operation:
    return Operation("gu", target, controls=tuple(controls),
                     params=zyz_angles(matrix))


def decompose_controlled_u(matrix, control: int,
                           target: int) -> list[Operation]:
    """Singly-controlled arbitrary gate as CX + single-qubit gates.

    The ABC construction: with ``matrix = e^{i g} Rz(phi) Ry(th) Rz(lam)``,

    ``A = Rz(phi) Ry(th/2)``, ``B = Ry(-th/2) Rz(-(phi+lam)/2)``,
    ``C = Rz((lam-phi)/2)`` satisfy ``A X B X C = Rz(phi) Ry(th) Rz(lam)``
    and ``A B C = I``; the full phase ``alpha = g + (phi + lam)/2``
    (``U = e^{i alpha} Rz Ry Rz``) becomes ``p(alpha)`` on the control.
    """
    theta, phi, lam, gamma = zyz_angles(matrix)
    alpha = gamma + (phi + lam) / 2.0
    operations: list[Operation] = []
    # C
    angle_c = (lam - phi) / 2.0
    if angle_c:
        operations.append(Operation("rz", target, params=(angle_c,)))
    operations.append(Operation("x", target, controls=(control,)))
    # B
    angle_b = -(phi + lam) / 2.0
    if angle_b:
        operations.append(Operation("rz", target, params=(angle_b,)))
    if theta:
        operations.append(Operation("ry", target, params=(-theta / 2.0,)))
    operations.append(Operation("x", target, controls=(control,)))
    # A
    if theta:
        operations.append(Operation("ry", target, params=(theta / 2.0,)))
    if phi:
        operations.append(Operation("rz", target, params=(phi,)))
    if alpha:
        operations.append(Operation("p", control, params=(alpha,)))
    return operations


def decompose_ccu(matrix, control1: int, control2: int,
                  target: int) -> list[Operation]:
    """Doubly-controlled gate via its controlled square root.

    ``CCU = CV(c2,t) CX(c1,c2) CV^dag(c2,t) CX(c1,c2) CV(c1,t)`` with
    ``V = sqrt(U)`` (Barenco et al. 1995), each CV expanded by
    :func:`decompose_controlled_u`.
    """
    v = matrix_sqrt_2x2(matrix)
    v_dagger = np.conj(v).T
    operations: list[Operation] = []
    operations.extend(decompose_controlled_u(v, control2, target))
    operations.append(Operation("x", control2, controls=(control1,)))
    operations.extend(decompose_controlled_u(v_dagger, control2, target))
    operations.append(Operation("x", control2, controls=(control1,)))
    operations.extend(decompose_controlled_u(v, control1, target))
    return operations


def decompose_mcx(controls: list[int], target: int,
                  ancillas: list[int]) -> list[Operation]:
    """k-controlled X as a Toffoli V-chain over ``k - 2`` clean ancillas.

    Ancillas must start in ``|0>`` and are returned to ``|0>``.  For
    ``k <= 2`` no ancillas are needed and the operation passes through.
    """
    k = len(controls)
    if k <= 2:
        return [Operation("x", target, controls=tuple(controls))]
    if len(ancillas) < k - 2:
        raise ValueError(f"{k}-controlled X needs {k - 2} ancillas, "
                         f"got {len(ancillas)}")
    used = ancillas[:k - 2]
    forward: list[Operation] = [
        Operation("x", used[0], controls=(controls[0], controls[1]))]
    for i in range(k - 3):
        forward.append(Operation("x", used[i + 1],
                                 controls=(controls[i + 2], used[i])))
    middle = Operation("x", target, controls=(controls[-1], used[-1]))
    backward = [op for op in reversed(forward)]
    return forward + [middle] + backward


def decompose_to_two_qubit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a circuit so every operation touches at most two qubits.

    Multi-controlled X gates use the V-chain (ancillas appended to the
    register as needed); doubly-controlled non-X gates use the Barenco
    construction; higher-controlled non-X gates are first reduced to an
    MCX sandwich via the phase-kickback identity where possible, otherwise
    rejected.  Repeated blocks are decomposed in place.
    """
    # first pass: size the ancilla pool.  A k-controlled X needs k-2 chain
    # ancillas; a k-controlled (k >= 3) non-X gate needs k-2 chain ancillas
    # plus one AND-target ancilla.
    extra = 0
    for op in circuit.operations():
        k = len(op.controls)
        if k >= 3:
            extra = max(extra, k - 2 if op.gate == "x" else k - 1)
    total_qubits = circuit.num_qubits + extra
    ancillas = list(range(circuit.num_qubits, total_qubits))

    def rewrite(op: Operation) -> list[Operation]:
        k = len(op.controls)
        if k <= 1:
            return [op]
        if any(value == 0 for _, value in op.controls):
            # normalise negative controls with X conjugation
            negatives = [q for q, value in op.controls if value == 0]
            positive = Operation(
                op.gate, op.target,
                controls=tuple((q, 1) for q, _ in op.controls),
                params=op.params)
            wrapped: list[Operation] = [Operation("x", q)
                                        for q in negatives]
            wrapped.extend(rewrite(positive))
            wrapped.extend(Operation("x", q) for q in negatives)
            return wrapped
        control_qubits = [q for q, _ in op.controls]
        if op.gate == "x" and k >= 3:
            chain = decompose_mcx(control_qubits, op.target, ancillas)
            return [sub for toffoli in chain for sub in rewrite(toffoli)]
        if k == 2:
            return decompose_ccu(op.matrix(), control_qubits[0],
                                 control_qubits[1], op.target)
        # k >= 3, non-X core: collapse the controls into one ancilla with
        # an MCX pair, leaving a singly-controlled core gate
        gather = decompose_mcx(control_qubits, ancillas[-1], ancillas[:-1])
        gather = [sub for toffoli in gather for sub in rewrite(toffoli)]
        core = decompose_controlled_u(op.matrix(), ancillas[-1], op.target)
        return gather + core + gather

    def transform(instructions) -> list:
        result = []
        for instruction in instructions:
            if isinstance(instruction, RepeatedBlock):
                result.append(RepeatedBlock(
                    tuple(transform(instruction.body)),
                    instruction.repetitions, instruction.label))
            else:
                result.extend(rewrite(instruction))
        return result

    decomposed = QuantumCircuit(total_qubits,
                                name=f"{circuit.name}_2q")
    decomposed.extend(transform(circuit.instructions))
    return decomposed
