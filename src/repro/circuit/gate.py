"""Gate definitions: names, 2x2 matrices, parameters, inverses.

Every elementary operation in the circuit IR is a (multi-)controlled
single-qubit gate; this module is the registry of the single-qubit cores.
The set covers everything the paper's benchmarks need: the Clifford+T
gates, the ``X^1/2`` / ``Y^1/2`` gates of the Google supremacy circuits,
and the rotations / phase gates of QFT-based arithmetic.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["GateDefinition", "GATES", "gate_matrix", "inverse_gate",
           "is_diagonal_gate"]

_SQRT2_INV = 1 / math.sqrt(2)


def _const(matrix) -> Callable[[tuple], np.ndarray]:
    array = np.array(matrix, dtype=complex)

    def build(params: tuple) -> np.ndarray:
        return array

    return build


def _rx(params: tuple) -> np.ndarray:
    theta = params[0]
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(params: tuple) -> np.ndarray:
    theta = params[0]
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(params: tuple) -> np.ndarray:
    theta = params[0]
    return np.array([[cmath.exp(-0.5j * theta), 0],
                     [0, cmath.exp(0.5j * theta)]], dtype=complex)


def _phase(params: tuple) -> np.ndarray:
    lam = params[0]
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _u(params: tuple) -> np.ndarray:
    theta, phi, lam = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [[c, -cmath.exp(1j * lam) * s],
         [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c]],
        dtype=complex)


def _gu(params: tuple) -> np.ndarray:
    """``u`` with an explicit global phase: ``e^{i gamma} U(theta,phi,lam)``.

    The global phase matters once the gate is *controlled* -- it becomes a
    relative phase -- so gate synthesis needs this 4-parameter family to
    represent arbitrary 2x2 unitaries exactly.
    """
    theta, phi, lam, gamma = params
    return cmath.exp(1j * gamma) * _u((theta, phi, lam))


@dataclass(frozen=True)
class GateDefinition:
    """A named single-qubit gate family."""

    name: str
    num_params: int
    build_matrix: Callable[[tuple], np.ndarray]
    #: name of the inverse gate; ``None`` means "same name, negated params"
    inverse_name: str | None
    #: diagonal gates commute with each other -- used by optimisations/tests
    diagonal: bool = False

    def matrix(self, params: tuple = ()) -> np.ndarray:
        if len(params) != self.num_params:
            raise ValueError(f"gate {self.name} expects {self.num_params} "
                             f"parameter(s), got {len(params)}")
        return self.build_matrix(tuple(params))


GATES: dict[str, GateDefinition] = {}


def _register(name: str, num_params: int, build, inverse_name: str | None,
              diagonal: bool = False) -> None:
    GATES[name] = GateDefinition(name, num_params, build, inverse_name,
                                 diagonal)


_register("id", 0, _const([[1, 0], [0, 1]]), "id", diagonal=True)
_register("x", 0, _const([[0, 1], [1, 0]]), "x")
_register("y", 0, _const([[0, -1j], [1j, 0]]), "y")
_register("z", 0, _const([[1, 0], [0, -1]]), "z", diagonal=True)
_register("h", 0, _const([[_SQRT2_INV, _SQRT2_INV],
                          [_SQRT2_INV, -_SQRT2_INV]]), "h")
_register("s", 0, _const([[1, 0], [0, 1j]]), "sdg", diagonal=True)
_register("sdg", 0, _const([[1, 0], [0, -1j]]), "s", diagonal=True)
_register("t", 0, _const([[1, 0], [0, cmath.exp(0.25j * math.pi)]]), "tdg",
          diagonal=True)
_register("tdg", 0, _const([[1, 0], [0, cmath.exp(-0.25j * math.pi)]]), "t",
          diagonal=True)
# X^(1/2) and Y^(1/2): the non-diagonal single-qubit gates of the Google
# supremacy circuits (Boixo et al., paper ref. [11]).
_register("sx", 0, _const([[0.5 + 0.5j, 0.5 - 0.5j],
                           [0.5 - 0.5j, 0.5 + 0.5j]]), "sxdg")
_register("sxdg", 0, _const([[0.5 - 0.5j, 0.5 + 0.5j],
                             [0.5 + 0.5j, 0.5 - 0.5j]]), "sx")
_register("sy", 0, _const([[0.5 + 0.5j, -0.5 - 0.5j],
                           [0.5 + 0.5j, 0.5 + 0.5j]]), "sydg")
_register("sydg", 0, _const([[0.5 - 0.5j, 0.5 - 0.5j],
                             [-0.5 + 0.5j, 0.5 - 0.5j]]), "sy")
_register("rx", 1, _rx, None)
_register("ry", 1, _ry, None)
_register("rz", 1, _rz, None, diagonal=True)
_register("p", 1, _phase, None, diagonal=True)
_register("u", 3, _u, "u")    # inverse handled specially below
_register("gu", 4, _gu, "gu")  # inverse handled specially below


def gate_matrix(name: str, params: tuple = ()) -> np.ndarray:
    """The 2x2 unitary of gate ``name`` with ``params``."""
    definition = GATES.get(name)
    if definition is None:
        raise KeyError(f"unknown gate {name!r}; known: {sorted(GATES)}")
    return definition.matrix(params)


def inverse_gate(name: str, params: tuple = ()) -> tuple[str, tuple]:
    """``(name, params)`` of the inverse of the given gate."""
    definition = GATES.get(name)
    if definition is None:
        raise KeyError(f"unknown gate {name!r}")
    if name == "u":
        theta, phi, lam = params
        return "u", (-theta, -lam, -phi)
    if name == "gu":
        theta, phi, lam, gamma = params
        return "gu", (-theta, -lam, -phi, -gamma)
    if definition.inverse_name is not None:
        return definition.inverse_name, params
    return name, tuple(-value for value in params)


def is_diagonal_gate(name: str) -> bool:
    """Whether the gate's matrix is diagonal (phase-type gate)."""
    definition = GATES.get(name)
    if definition is None:
        raise KeyError(f"unknown gate {name!r}")
    return definition.diagonal
