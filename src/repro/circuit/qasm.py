"""OpenQASM 2.0 subset reader and writer.

Supports the gate set the benchmarks use: ``x y z h s sdg t tdg sx rx ry rz
p/u1 cx cz cp/cu1 ccx swap``.  Multi-controlled X/Z/P operations are written
as the non-standard-but-common names ``mcx``/``mcz``/``mcp`` so circuits
round-trip; the reader accepts them back.  Parameter expressions may use
``pi``, the four arithmetic operators, parentheses and unary minus.

This is intentionally a pragmatic subset, not a full OpenQASM front end:
``creg``/``measure``/``barrier`` lines are tolerated and ignored (the
simulator measures final states itself), custom ``gate`` definitions are
rejected with a clear error.
"""

from __future__ import annotations

import ast
import math
import operator
import re

from .circuit import QuantumCircuit, RepeatedBlock
from .operation import Operation

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised on malformed or unsupported QASM input."""


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

_PLAIN_GATES = {"id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
                "sxdg", "sy", "sydg"}
_PARAM_GATES = {"rx", "ry", "rz", "p", "u"}


def _format_param(value: float) -> str:
    """Render a parameter, preferring exact multiples of pi."""
    if value == 0:
        return "0"
    ratio = value / math.pi
    for denominator in (1, 2, 3, 4, 6, 8, 16, 32, 64, 128, 256, 512, 1024):
        numerator = ratio * denominator
        if abs(numerator - round(numerator)) < 1e-12:
            numerator = round(numerator)
            if numerator == 0:
                return "0"
            prefix = "" if numerator > 0 else "-"
            numerator = abs(numerator)
            head = "pi" if numerator == 1 else f"{numerator}*pi"
            return f"{prefix}{head}" if denominator == 1 \
                else f"{prefix}{head}/{denominator}"
    return repr(value)


def _operation_to_qasm(op: Operation) -> str:
    if any(value == 0 for _, value in op.controls):
        raise QasmError("negative controls cannot be expressed in QASM 2; "
                        "surround with X gates first")
    controls = [qubit for qubit, _ in op.controls]
    params = ""
    if op.params:
        params = "(" + ",".join(_format_param(p) for p in op.params) + ")"
    args = ",".join(f"q[{qubit}]" for qubit in controls + [op.target])
    if not controls:
        if op.gate in _PLAIN_GATES or op.gate in _PARAM_GATES:
            return f"{op.gate}{params} {args};"
        raise QasmError(f"cannot serialise gate {op.gate!r}")
    if op.gate == "x":
        name = {1: "cx", 2: "ccx"}.get(len(controls), "mcx")
    elif op.gate == "z":
        name = {1: "cz"}.get(len(controls), "mcz")
    elif op.gate == "p":
        name = {1: "cp"}.get(len(controls), "mcp")
    else:
        if len(controls) != 1:
            raise QasmError(f"cannot serialise multi-controlled {op.gate!r}")
        name = "c" + op.gate
    return f"{name}{params} {args};"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit (repeated blocks are unrolled, with comments)."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for instruction in circuit.instructions:
        if isinstance(instruction, RepeatedBlock):
            label = instruction.label or "block"
            lines.append(f"// repeat {label} x{instruction.repetitions}")
            for _ in range(instruction.repetitions):
                for op in instruction.operations():
                    lines.append(_operation_to_qasm(op))
            lines.append(f"// end repeat {label}")
        else:
            lines.append(_operation_to_qasm(instruction))
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

_BINARY_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Pow: operator.pow,
}


def _eval_param(text: str) -> float:
    """Safely evaluate a QASM parameter expression."""
    try:
        tree = ast.parse(text.strip().replace("pi", str(math.pi)),
                         mode="eval")
    except SyntaxError as exc:
        raise QasmError(f"bad parameter expression {text!r}") from exc

    def evaluate(node) -> float:
        if isinstance(node, ast.Expression):
            return evaluate(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value,
                                                         (int, float)):
            return float(node.value)
        if isinstance(node, ast.BinOp) and type(node.op) in _BINARY_OPS:
            return _BINARY_OPS[type(node.op)](evaluate(node.left),
                                              evaluate(node.right))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -evaluate(node.operand)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
            return evaluate(node.operand)
        raise QasmError(f"unsupported construct in parameter {text!r}")

    return evaluate(tree)


_STATEMENT_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][\w]*)\s*"
    r"(?:\(\s*(?P<params>[^)]*)\s*\))?\s*"
    r"(?P<args>[^;]*);?$")

_QUBIT_RE = re.compile(r"^(?P<reg>[a-zA-Z_][\w]*)\[(?P<index>\d+)\]$")

#: gate name -> (core gate, number of leading control arguments)
_READER_GATES = {
    "id": ("id", 0), "x": ("x", 0), "y": ("y", 0), "z": ("z", 0),
    "h": ("h", 0), "s": ("s", 0), "sdg": ("sdg", 0), "t": ("t", 0),
    "tdg": ("tdg", 0), "sx": ("sx", 0), "sxdg": ("sxdg", 0),
    "sy": ("sy", 0), "sydg": ("sydg", 0),
    "rx": ("rx", 0), "ry": ("ry", 0), "rz": ("rz", 0),
    "p": ("p", 0), "u1": ("p", 0), "u": ("u", 0), "u3": ("u", 0),
    "u2": ("u", 0),  # u2(phi, lam) = u(pi/2, phi, lam); fixed up below
    "cx": ("x", 1), "CX": ("x", 1), "cz": ("z", 1), "cy": ("y", 1),
    "ch": ("h", 1), "cp": ("p", 1), "cu1": ("p", 1),
    "crx": ("rx", 1), "cry": ("ry", 1), "crz": ("rz", 1),
    "ccx": ("x", 2), "ccz": ("z", 2),
}

# The writer serialises any singly-controlled gate as "c<name>"; accept all
# of them back (cs, ct, csx, csydg, ... -- non-standard but round-trip safe).
for _name in ("s", "sdg", "t", "tdg", "sx", "sxdg", "sy", "sydg", "id",
              "u", "gu"):
    _READER_GATES.setdefault(f"c{_name}", (_name, 1))
del _name


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 subset into a :class:`QuantumCircuit`."""
    registers: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
    total_qubits = 0
    operations: list[Operation] = []

    def qubit_index(token: str) -> int:
        token = token.strip()
        match = _QUBIT_RE.match(token)
        if not match:
            raise QasmError(f"expected qubit reference, got {token!r}")
        name = match.group("reg")
        index = int(match.group("index"))
        if name not in registers:
            raise QasmError(f"unknown register {name!r}")
        offset, size = registers[name]
        if index >= size:
            raise QasmError(f"index {index} out of range for register "
                            f"{name!r} of size {size}")
        return offset + index

    # Strip comments, split on semicolons so multi-statement lines work.
    cleaned = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in cleaned.split(";") if s.strip()]
    for statement in statements:
        if statement.startswith(("OPENQASM", "include")):
            continue
        match = _STATEMENT_RE.match(statement + ";")
        if not match:
            raise QasmError(f"cannot parse statement {statement!r}")
        name = match.group("name")
        params_text = match.group("params")
        args_text = match.group("args").strip()
        if name == "qreg":
            reg_match = _QUBIT_RE.match(args_text)
            if not reg_match:
                raise QasmError(f"bad qreg declaration {statement!r}")
            reg_name = reg_match.group("reg")
            size = int(reg_match.group("index"))
            registers[reg_name] = (total_qubits, size)
            total_qubits += size
            continue
        if name in ("creg", "barrier", "measure", "reset"):
            continue
        if name == "gate":
            raise QasmError("custom gate definitions are not supported by "
                            "this reader")
        params = ()
        if params_text:
            params = tuple(_eval_param(p) for p in params_text.split(","))
        if name == "u2":
            if len(params) != 2:
                raise QasmError("u2 expects two parameters")
            params = (math.pi / 2, params[0], params[1])
        qubits = [qubit_index(token) for token in args_text.split(",")]
        if name in ("mcx", "mcz", "mcp"):
            core = {"mcx": "x", "mcz": "z", "mcp": "p"}[name]
            operations.append(Operation(core, qubits[-1],
                                        controls=tuple(qubits[:-1]),
                                        params=params))
            continue
        if name == "swap":
            a, b = qubits
            operations.extend([Operation("x", b, controls=(a,)),
                               Operation("x", a, controls=(b,)),
                               Operation("x", b, controls=(a,))])
            continue
        if name == "cswap":
            c, a, b = qubits
            operations.extend([Operation("x", a, controls=(b,)),
                               Operation("x", b, controls=(c, a)),
                               Operation("x", a, controls=(b,))])
            continue
        entry = _READER_GATES.get(name)
        if entry is None:
            raise QasmError(f"unsupported gate {name!r}")
        core, num_controls = entry
        if len(qubits) != num_controls + 1:
            raise QasmError(f"gate {name} expects {num_controls + 1} qubits, "
                            f"got {len(qubits)}")
        operations.append(Operation(core, qubits[-1],
                                    controls=tuple(qubits[:num_controls]),
                                    params=params))

    if total_qubits == 0:
        raise QasmError("no qreg declaration found")
    circuit = QuantumCircuit(total_qubits, name="qasm_import")
    circuit.extend(operations)
    return circuit
