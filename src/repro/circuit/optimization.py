"""Peephole circuit optimisation passes.

Light-weight, semantics-preserving rewrites on the elementary-operation
stream.  These matter to the simulation study in two ways: (a) they shrink
the benchmark circuits a simulator sees, and (b) they interact with the
combining strategies (a cancelled pair is the extreme case of a combined
product being the identity).  Every pass is verified against the DD-based
equivalence checker in the test suite.

Passes operate on fully unrolled operation lists; repeated-block structure
is preserved by optimising block bodies independently.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .circuit import QuantumCircuit, RepeatedBlock
from .gate import is_diagonal_gate
from .operation import Operation

__all__ = ["cancel_adjacent_inverses", "merge_rotations",
           "drop_identity_gates", "optimise"]

_TWO_PI = 2 * math.pi

#: gate pairs (unordered) that cancel when adjacent on identical
#: target/controls
_INVERSE_PAIRS = {
    frozenset(("x",)), frozenset(("y",)), frozenset(("z",)),
    frozenset(("h",)), frozenset(("id",)),
    frozenset(("s", "sdg")), frozenset(("t", "tdg")),
    frozenset(("sx", "sxdg")), frozenset(("sy", "sydg")),
}

#: rotation families that merge by adding parameters
_MERGEABLE = {"rx", "ry", "rz", "p"}


def _same_slot(a: Operation, b: Operation) -> bool:
    return a.target == b.target and a.controls == b.controls


def _commute_trivially(a: Operation, b: Operation) -> bool:
    """Conservative commutation: disjoint qubits, or both diagonal.

    A controlled gate whose core is diagonal is a diagonal matrix on the
    full register, and diagonal matrices always commute.
    """
    if set(a.qubits()).isdisjoint(b.qubits()):
        return True
    return is_diagonal_gate(a.gate) and is_diagonal_gate(b.gate)


def _cancels(a: Operation, b: Operation) -> bool:
    if not _same_slot(a, b):
        return False
    if a.params or b.params:
        return False
    return frozenset((a.gate, b.gate)) in _INVERSE_PAIRS


def _scan_cancel(operations: list[Operation]) -> tuple[list[Operation], bool]:
    """One pass of adjacent-inverse cancellation (with trivial commuting)."""
    result: list[Operation] = []
    changed = False
    for op in operations:
        # look backwards over trivially commuting operations
        index = len(result) - 1
        while index >= 0:
            candidate = result[index]
            if _cancels(candidate, op):
                del result[index]
                changed = True
                break
            if not _commute_trivially(candidate, op):
                result.append(op)
                break
            index -= 1
        else:
            result.append(op)
    return result, changed


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent self-inverse pairs (H H, CX CX, S Sdg, ...).

    The scan looks through trivially commuting neighbours, so ``H(0) X(1)
    H(0)`` still cancels the Hadamards.  Iterates to a fixed point.
    """
    return _map_instruction_lists(circuit, _cancel_to_fixpoint)


def _cancel_to_fixpoint(operations: list[Operation]) -> list[Operation]:
    changed = True
    while changed:
        operations, changed = _scan_cancel(operations)
    return operations


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse adjacent same-axis rotations (``rz(a) rz(b) -> rz(a+b)``)."""

    def merge(operations: list[Operation]) -> list[Operation]:
        result: list[Operation] = []
        for op in operations:
            if (op.gate in _MERGEABLE and result
                    and result[-1].gate == op.gate
                    and _same_slot(result[-1], op)):
                angle = result[-1].params[0] + op.params[0]
                result[-1] = Operation(op.gate, op.target, op.controls,
                                       (angle,))
                continue
            result.append(op)
        return result

    return _map_instruction_lists(circuit, merge)


def drop_identity_gates(circuit: QuantumCircuit,
                        tolerance: float = 1e-12) -> QuantumCircuit:
    """Remove ``id`` gates and rotations by (multiples of) zero angle."""

    def keep(op: Operation) -> bool:
        if op.gate == "id":
            return False
        if op.gate in ("rx", "ry"):
            angle = op.params[0] % (2 * _TWO_PI)  # rx has period 4 pi
            return min(angle, 2 * _TWO_PI - angle) > tolerance
        if op.gate == "p":
            angle = op.params[0] % _TWO_PI
            return min(angle, _TWO_PI - angle) > tolerance
        if op.gate == "rz":
            angle = op.params[0] % (2 * _TWO_PI)
            return min(angle, 2 * _TWO_PI - angle) > tolerance
        return True

    def drop(operations: list[Operation]) -> list[Operation]:
        return [op for op in operations if keep(op)]

    return _map_instruction_lists(circuit, drop)


def optimise(circuit: QuantumCircuit, passes: int = 3) -> QuantumCircuit:
    """Run all passes in sequence, ``passes`` times (or to a fixed point)."""
    current = circuit
    for _ in range(passes):
        before = current.num_operations()
        current = drop_identity_gates(
            merge_rotations(cancel_adjacent_inverses(current)))
        if current.num_operations() == before:
            break
    return current


# ----------------------------------------------------------------------


def _map_instruction_lists(circuit: QuantumCircuit, transform) -> QuantumCircuit:
    """Apply ``transform`` to every contiguous operation run, per block."""
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    buffer: list[Operation] = []

    def flush() -> None:
        for op in transform(list(buffer)):
            result.append(op)
        buffer.clear()

    for instruction in circuit.instructions:
        if isinstance(instruction, RepeatedBlock):
            flush()
            body = QuantumCircuit(circuit.num_qubits)
            for op in instruction.body:
                body.append(op)
            optimised_body = _map_instruction_lists(body, transform)
            result.add_repeated_block(optimised_body,
                                      instruction.repetitions,
                                      instruction.label)
        else:
            buffer.append(instruction)
    flush()
    return result
