"""Mapping circuits to linear nearest-neighbour coupling.

Real devices restrict two-qubit gates to coupled pairs; compilers insert
SWAPs to satisfy that.  This module implements the simplest realistic
target -- a line where qubit ``i`` couples only to ``i +- 1`` -- with a
greedy router that tracks the logical-to-physical permutation instead of
swapping back after every gate (halving the SWAP count of the naive
scheme).

Mapped circuits end with their qubits permuted; :class:`MappedCircuit`
carries the final layout so results can be read back correctly, and its
``unpermuted_state`` helper uses the DD reordering machinery to restore the
logical order of a simulated state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dd.edge import Edge
from ..dd.package import Package
from ..dd.reordering import permute_qubits
from .circuit import QuantumCircuit
from .operation import Operation

__all__ = ["MappedCircuit", "map_to_line", "line_distance_cost",
           "permute_operation", "permute_circuit"]


def permute_operation(operation: Operation,
                      permutation: list[int]) -> Operation:
    """Relabel an operation's qubits through ``permutation``.

    ``permutation[q]`` is the new position of original qubit ``q`` -- the
    same direction :func:`repro.dd.reordering.sift` returns, so an
    operation remapped with the sift permutation acts on the reordered
    state exactly as the original acted on the ordered one.
    """
    return Operation(
        gate=operation.gate,
        target=permutation[operation.target],
        controls=tuple((permutation[qubit], value)
                       for qubit, value in operation.controls),
        params=operation.params,
    )


def permute_circuit(circuit: QuantumCircuit,
                    permutation: list[int]) -> QuantumCircuit:
    """A flattened copy of ``circuit`` with every operation remapped.

    Repeated blocks are unrolled (remapping preserves the elementary
    operation stream, not the block structure); the result is mainly
    useful for offline studies -- the engine remaps operations lazily
    instead, keeping checkpoint fingerprints bound to the original
    stream.
    """
    permuted = QuantumCircuit(circuit.num_qubits,
                              name=f"{circuit.name}_permuted")
    for operation in circuit.operations():
        remapped = permute_operation(operation, permutation)
        permuted.add_operation(remapped.gate, remapped.target,
                               controls=remapped.controls,
                               params=remapped.params)
    return permuted


@dataclass
class MappedCircuit:
    """A routed circuit plus its final logical-to-physical layout."""

    circuit: QuantumCircuit
    #: final_layout[logical_qubit] = physical_qubit
    final_layout: list[int]
    swaps_inserted: int

    def physical_of(self, logical: int) -> int:
        return self.final_layout[logical]

    def logical_index(self, physical_index: int) -> int:
        """Re-interpret a measured physical basis index logically."""
        result = 0
        for logical, physical in enumerate(self.final_layout):
            if (physical_index >> physical) & 1:
                result |= 1 << logical
        return result

    def unpermuted_state(self, package: Package, state: Edge) -> Edge:
        """Reorder a simulated (physical) state DD back to logical order.

        After this, amplitude ``x`` of the returned DD is the amplitude the
        *original* circuit would have produced for logical basis state
        ``x``.
        """
        # state is indexed physically; move physical level p back to the
        # logical position l with final_layout[l] = p.
        permutation = [0] * len(self.final_layout)
        for logical, physical in enumerate(self.final_layout):
            permutation[physical] = logical
        return permute_qubits(package, state, permutation)


def line_distance_cost(circuit: QuantumCircuit) -> int:
    """Total excess distance of two-qubit gates on the line (lower bound
    on the SWAPs a router must insert, ignoring layout changes)."""
    total = 0
    for op in circuit.operations():
        qubits = op.qubits()
        if len(qubits) == 2:
            total += abs(qubits[0] - qubits[1]) - 1
    return total


def map_to_line(circuit: QuantumCircuit) -> MappedCircuit:
    """Route a circuit onto linear nearest-neighbour coupling.

    Supports single-qubit operations and two-qubit operations (one
    control).  Multi-controlled operations must be decomposed first -- they
    have no single physical site on a line.
    """
    num_qubits = circuit.num_qubits
    routed = QuantumCircuit(num_qubits, name=f"{circuit.name}_line")
    layout = list(range(num_qubits))            # layout[logical] = physical
    occupant = list(range(num_qubits))          # occupant[physical] = logical
    swaps = 0

    def emit_swap(physical_a: int, physical_b: int) -> None:
        nonlocal swaps
        routed.swap(physical_a, physical_b)
        swaps += 1
        logical_a = occupant[physical_a]
        logical_b = occupant[physical_b]
        occupant[physical_a], occupant[physical_b] = logical_b, logical_a
        layout[logical_a], layout[logical_b] = physical_b, physical_a

    for op in circuit.operations():
        if len(op.controls) > 1:
            raise ValueError(
                f"cannot route multi-controlled operation {op}; decompose "
                "to two-qubit gates first")
        if not op.controls:
            routed.add_operation(op.gate, layout[op.target],
                                 params=op.params)
            continue
        (control_logical, control_value), = op.controls
        control = layout[control_logical]
        target = layout[op.target]
        # walk the control towards the target, one swap at a time
        while abs(control - target) > 1:
            step = 1 if target > control else -1
            emit_swap(control, control + step)
            control += step
        routed.add_operation(op.gate, target,
                             controls=((control, control_value),),
                             params=op.params)
    return MappedCircuit(circuit=routed, final_layout=layout,
                         swaps_inserted=swaps)
