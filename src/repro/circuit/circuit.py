"""Quantum-circuit intermediate representation.

A :class:`QuantumCircuit` is a qubit count plus an ordered list of
*instructions*: elementary :class:`~repro.circuit.operation.Operation`\\ s or
:class:`RepeatedBlock`\\ s.  Repeated blocks carry the structural knowledge
the paper's *DD-repeating* strategy exploits (Sec. IV-B): a simulator that
understands them combines a block's operations into one matrix DD once and
re-uses it for every repetition; a simulator that does not simply iterates
over :meth:`QuantumCircuit.operations`, which transparently unrolls blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from .operation import Operation

__all__ = ["QuantumCircuit", "RepeatedBlock", "Instruction"]


@dataclass(frozen=True)
class RepeatedBlock:
    """A sub-circuit applied ``repetitions`` times in a row."""

    body: tuple["Instruction", ...]
    repetitions: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.repetitions < 0:
            raise ValueError("repetitions must be non-negative")
        object.__setattr__(self, "body", tuple(self.body))

    def operations(self) -> Iterator[Operation]:
        """Unrolled elementary operations of one body pass."""
        for instruction in self.body:
            if isinstance(instruction, RepeatedBlock):
                for _ in range(instruction.repetitions):
                    yield from instruction.operations()
            else:
                yield instruction


Instruction = Union[Operation, RepeatedBlock]


class QuantumCircuit:
    """An ordered sequence of quantum operations on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self.instructions: list[Instruction] = []

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(f"qubit {qubit} out of range for circuit "
                                 f"with {self.num_qubits} qubits")

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append an operation or repeated block; returns ``self`` for chaining."""
        if isinstance(instruction, Operation):
            self._check_qubits(instruction.qubits())
        elif isinstance(instruction, RepeatedBlock):
            for op in instruction.operations():
                self._check_qubits(op.qubits())
        else:
            raise TypeError(f"cannot append {type(instruction).__name__}")
        self.instructions.append(instruction)
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        for instruction in instructions:
            self.append(instruction)
        return self

    def add_operation(self, gate: str, target: int, controls=None,
                      params: tuple = ()) -> "QuantumCircuit":
        return self.append(Operation(gate, target, controls or (), params))

    def add_repeated_block(self, body: "QuantumCircuit | Iterable[Instruction]",
                           repetitions: int,
                           label: str = "") -> "QuantumCircuit":
        """Mark a sub-circuit as repeating ``repetitions`` times.

        ``body`` may be another circuit (its instructions are taken) or any
        iterable of instructions.
        """
        if isinstance(body, QuantumCircuit):
            instructions = tuple(body.instructions)
        else:
            instructions = tuple(body)
        return self.append(RepeatedBlock(instructions, repetitions, label))

    # -- single-qubit gates -------------------------------------------

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("x", qubit)

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("y", qubit)

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("z", qubit)

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("h", qubit)

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("s", qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("sdg", qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("t", qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("tdg", qubit)

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("sx", qubit)

    def sy(self, qubit: int) -> "QuantumCircuit":
        return self.add_operation("sy", qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add_operation("rx", qubit, params=(theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add_operation("ry", qubit, params=(theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add_operation("rz", qubit, params=(theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate ``diag(1, e^{i lam})``."""
        return self.add_operation("p", qubit, params=(lam,))

    # -- controlled gates ----------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_operation("x", target, controls=(control,))

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.add_operation("z", target, controls=(control,))

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.add_operation("p", target, controls=(control,),
                                  params=(lam,))

    def ccx(self, control1: int, control2: int,
            target: int) -> "QuantumCircuit":
        return self.add_operation("x", target, controls=(control1, control2))

    def mcx(self, controls: Iterable[int], target: int) -> "QuantumCircuit":
        return self.add_operation("x", target, controls=tuple(controls))

    def mcz(self, controls: Iterable[int], target: int) -> "QuantumCircuit":
        return self.add_operation("z", target, controls=tuple(controls))

    def mcp(self, lam: float, controls: Iterable[int],
            target: int) -> "QuantumCircuit":
        return self.add_operation("p", target, controls=tuple(controls),
                                  params=(lam,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP, expressed as three CX operations."""
        return self.cx(a, b).cx(b, a).cx(a, b)

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        """Controlled SWAP (Fredkin), as CX + Toffoli + CX."""
        self.cx(b, a)
        self.add_operation("x", b, controls=(control, a))
        return self.cx(b, a)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def operations(self) -> Iterator[Operation]:
        """All elementary operations in order, with repeated blocks unrolled."""
        for instruction in self.instructions:
            if isinstance(instruction, RepeatedBlock):
                for _ in range(instruction.repetitions):
                    yield from instruction.operations()
            else:
                yield instruction

    def num_operations(self) -> int:
        """Elementary operation count with blocks unrolled."""
        return sum(1 for _ in self.operations())

    def count_gates(self) -> dict[str, int]:
        """Histogram of gate names over the unrolled circuit."""
        counts: dict[str, int] = {}
        for op in self.operations():
            counts[op.gate] = counts.get(op.gate, 0) + 1
        return dict(sorted(counts.items()))

    def depth(self) -> int:
        """Schedule depth: gates touching disjoint qubits run in parallel."""
        level_per_qubit = [0] * self.num_qubits
        depth = 0
        for op in self.operations():
            qubits = op.qubits()
            start = max(level_per_qubit[q] for q in qubits)
            for q in qubits:
                level_per_qubit[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all of ``other``'s instructions (must fit this qubit count)."""
        if other.num_qubits > self.num_qubits:
            raise ValueError(
                f"cannot compose a {other.num_qubits}-qubit circuit into a "
                f"{self.num_qubits}-qubit circuit")
        return self.extend(other.instructions)

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit: reversed order, each instruction inverted."""
        result = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        result.instructions = [_invert(i) for i in reversed(self.instructions)]
        return result

    def repeated(self, repetitions: int, label: str = "") -> RepeatedBlock:
        """This circuit's instructions wrapped as a repeated block."""
        return RepeatedBlock(tuple(self.instructions), repetitions,
                             label or self.name)

    def __len__(self) -> int:
        return len(self.instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (self.num_qubits == other.num_qubits
                and self.instructions == other.instructions)

    def __repr__(self) -> str:
        return (f"QuantumCircuit(name={self.name!r}, "
                f"num_qubits={self.num_qubits}, "
                f"instructions={len(self.instructions)}, "
                f"operations={self.num_operations()})")


def _invert(instruction: Instruction) -> Instruction:
    if isinstance(instruction, RepeatedBlock):
        inverted_body = tuple(_invert(i) for i in reversed(instruction.body))
        return RepeatedBlock(inverted_body, instruction.repetitions,
                             instruction.label)
    return instruction.inverse()
