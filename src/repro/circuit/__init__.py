"""Quantum-circuit intermediate representation.

Circuits are ordered lists of elementary (multi-)controlled single-qubit
operations, optionally structured with :class:`RepeatedBlock` markers that
the *DD-repeating* simulation strategy exploits.  An OpenQASM 2.0 subset
reader/writer is included for interchange.
"""

from .circuit import Instruction, QuantumCircuit, RepeatedBlock
from .decomposition import (decompose_ccu, decompose_controlled_u,
                            decompose_mcx, decompose_to_two_qubit,
                            matrix_sqrt_2x2, zyz_angles)
from .gate import GATES, GateDefinition, gate_matrix, inverse_gate, is_diagonal_gate
from .mapping import (MappedCircuit, line_distance_cost, map_to_line,
                      permute_circuit, permute_operation)
from .operation import Operation
from .optimization import (cancel_adjacent_inverses, drop_identity_gates,
                           merge_rotations, optimise)
from .qasm import QasmError, from_qasm, to_qasm

__all__ = [
    "GATES",
    "GateDefinition",
    "Instruction",
    "MappedCircuit",
    "Operation",
    "QasmError",
    "QuantumCircuit",
    "RepeatedBlock",
    "cancel_adjacent_inverses",
    "decompose_ccu",
    "decompose_controlled_u",
    "decompose_mcx",
    "decompose_to_two_qubit",
    "drop_identity_gates",
    "from_qasm",
    "gate_matrix",
    "inverse_gate",
    "is_diagonal_gate",
    "line_distance_cost",
    "map_to_line",
    "matrix_sqrt_2x2",
    "merge_rotations",
    "optimise",
    "permute_circuit",
    "permute_operation",
    "to_qasm",
    "zyz_angles",
]
