"""Command-line interface: simulate, inspect and compare QASM circuits.

Examples::

    python -m repro simulate circuit.qasm --strategy smax=64 --shots 100
    python -m repro simulate circuit.qasm --checkpoint run.ckpt \\
        --checkpoint-every 500 --max-nodes 2000000 --degrade
    python -m repro resume run.ckpt circuit.qasm
    python -m repro audit run.ckpt
    python -m repro info circuit.qasm
    python -m repro equiv circuit_a.qasm circuit_b.qasm
    python -m repro factor 15
    python -m repro experiments --profile quick --jobs 4
    python -m repro sweep spec.json --jobs 4 --output report.json
    python -m repro jobs submit ./store --instance grover_8 --strategy k=4
    python -m repro jobs run ./store --workers 2 --trace store.jsonl
    python -m repro jobs status ./store
    python -m repro jobs retry ./store j0000-grover_8
"""

from __future__ import annotations

import argparse
import json
import sys
from random import Random

from .circuit import from_qasm
from .simulation import (DegradationPolicy, MemoryBudgetExceeded,
                         MemoryGovernor, SimulationEngine, strategy_from_spec)
from .verification import check_equivalence


def _load(path: str):
    with open(path, encoding="utf-8") as handle:
        return from_qasm(handle.read())


def _make_engine(args) -> SimulationEngine:
    governor = MemoryGovernor(node_limit=args.gc_limit,
                              max_nodes=args.max_nodes)
    return SimulationEngine(governor=governor)


def _make_policy(args) -> DegradationPolicy | None:
    if not args.degrade:
        return None
    return DegradationPolicy(fidelity_floor=args.fidelity_floor)


def _resilience_kwargs(args, policy) -> dict:
    return {
        "checkpoint_path": args.checkpoint,
        "checkpoint_every": args.checkpoint_every,
        "degradation": policy,
        "audit_every": args.audit_every,
        "reorder": args.reorder,
    }


def _print_result(args, circuit, engine, result, trace_sink,
                  policy=None) -> None:
    stats = result.statistics
    print(f"circuit   : {args.circuit} ({circuit.num_qubits} qubits, "
          f"{circuit.num_operations()} operations)")
    if stats.backend:
        print(f"backend   : {stats.backend}")
    if stats.backend_selection:
        print(f"selected  : {stats.backend_selection.get('reason', '')}")
    print(f"strategy  : {stats.strategy}")
    print(f"mults     : {stats.matrix_vector_mults} matrix-vector, "
          f"{stats.matrix_matrix_mults} matrix-matrix")
    if stats.final_state_nodes or stats.peak_state_nodes:
        print(f"state DD  : {stats.final_state_nodes} nodes "
              f"(peak {stats.peak_state_nodes})")
    if stats.gc.collections:
        limit = f" (limit now {engine.governor.limit})" \
            if engine is not None else ""
        print(f"GC        : {stats.gc.collections} collections, "
              f"{stats.gc.nodes_freed} nodes freed, "
              f"{stats.gc.pause_seconds:.3f}s paused{limit}")
    if stats.checkpoints_written and args.checkpoint:
        print(f"checkpoint: {args.checkpoint} "
              f"({stats.checkpoints_written} written)")
    if stats.degradation_actions:
        kinds: dict[str, int] = {}
        for action in stats.degradation_actions:
            kinds[action.get("action", "?")] = \
                kinds.get(action.get("action", "?"), 0) + 1
        summary = ", ".join(f"{count}x {kind}"
                            for kind, count in sorted(kinds.items()))
        print(f"degraded  : {summary} "
              f"(fidelity {stats.cumulative_fidelity:.6f})")
    if stats.reorders:
        order = "identity" if result.permutation is None \
            else " ".join(str(level) for level in result.permutation)
        print(f"reorders  : {stats.reorders} sift(s), "
              f"{stats.reorder_nodes_saved} state nodes saved "
              f"(final order: {order})")
    if stats.audits_run:
        print(f"audits    : {stats.audits_run} passed")
    if args.trace:
        print(f"trace     : {args.trace} "
              f"({trace_sink.events_written} events)")
    print(f"time      : {stats.wall_time_seconds:.3f}s")
    if args.amplitudes:
        print("\nnon-negligible amplitudes:")
        shown = 0
        for index in range(1 << circuit.num_qubits):
            amplitude = result.amplitude(index)
            if abs(amplitude) ** 2 >= args.threshold:
                print(f"  |{index:0{circuit.num_qubits}b}>  "
                      f"{amplitude.real:+.6f}{amplitude.imag:+.6f}j   "
                      f"p={abs(amplitude) ** 2:.6f}")
                shown += 1
                if shown >= args.limit:
                    print("  ... (limit reached)")
                    break
    if args.shots:
        # result.sample remaps outcomes to logical qubit order when the
        # run reordered its variables mid-flight.
        counts = result.sample(args.shots, Random(args.seed))
        print(f"\n{args.shots} shots:")
        for index, count in sorted(counts.items(),
                                   key=lambda item: -item[1])[:args.limit]:
            print(f"  |{index:0{circuit.num_qubits}b}>  x{count}")


def _run_and_report(args, circuit, run) -> int:
    """Shared driver for ``simulate`` and ``resume``."""
    from .simulation import reorder_from_spec
    try:
        # fail fast on a malformed --reorder spec, before any simulation
        reorder_from_spec(args.reorder)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = _make_engine(args)
    policy = _make_policy(args)
    trace_sink = None
    if args.trace:
        from .simulation import JsonlTraceSink
        trace_sink = JsonlTraceSink(args.trace)
    try:
        result = run(engine, policy, trace_sink)
    except MemoryBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.checkpoint_path is not None:
            print(f"checkpoint: {exc.checkpoint_path} "
                  f"(resume with: python -m repro resume "
                  f"{exc.checkpoint_path} <circuit.qasm>)", file=sys.stderr)
        return 2
    finally:
        if trace_sink is not None:
            trace_sink.close()
    _print_result(args, circuit, engine, result, trace_sink, policy)
    return 0


def _cmd_simulate(args) -> int:
    if args.backend is not None:
        return _cmd_simulate_backend(args)
    circuit = _load(args.circuit)
    strategy = strategy_from_spec(args.strategy)

    def run(engine, policy, trace_sink):
        initial = engine.initial_state(circuit.num_qubits, args.initial)
        return engine.simulate(circuit, strategy, initial_state=initial,
                               trace=trace_sink,
                               **_resilience_kwargs(args, policy))

    return _run_and_report(args, circuit, run)


def _cmd_simulate_backend(args) -> int:
    """``simulate --backend NAME|auto``: dispatch through the registry.

    ``auto`` scores the circuit with the cheap predictors and records the
    decision (chosen backend, feature vector, per-backend scores) into
    the run's statistics; an explicit name always beats ``auto``.
    Requested features the chosen backend lacks (reordering, checkpoints,
    strategies) fail up front with the capability error, not mid-run.
    """
    from .backends import resolve_backend
    circuit = _load(args.circuit)
    # only forward engine budgets the user actually set -- array backends
    # take no budget options, and the DD default is 500k anyway
    options = {}
    if args.gc_limit != 500_000:
        options["gc_limit"] = args.gc_limit
    if args.max_nodes is not None:
        options["max_nodes"] = args.max_nodes
    trace_sink = None
    try:
        backend, selection = resolve_backend(args.backend, circuit,
                                             **options)
        policy = _make_policy(args)
        run_options = {key: value for key, value in
                       _resilience_kwargs(args, policy).items()
                       if value is not None}
        if args.trace:
            from .simulation import JsonlTraceSink
            trace_sink = JsonlTraceSink(args.trace)
            run_options["trace"] = trace_sink
        result = backend.run(circuit, strategy=args.strategy,
                             initial_index=args.initial, **run_options)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except MemoryBudgetExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if trace_sink is not None:
            trace_sink.close()
    if selection is not None:
        result.statistics.backend_selection = selection.as_dict()
    _print_result(args, circuit, None, result, trace_sink)
    return 0


def _cmd_resume(args) -> int:
    from .simulation import load_checkpoint
    circuit = _load(args.circuit)
    try:
        checkpoint = load_checkpoint(args.checkpoint_file)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"resuming  : {args.checkpoint_file} at operation "
          f"{checkpoint.op_index}/{checkpoint.total_ops} "
          f"(reason: {checkpoint.reason})")

    def run(engine, policy, trace_sink):
        return engine.resume(checkpoint, circuit, trace=trace_sink,
                             **_resilience_kwargs(args, policy))

    return _run_and_report(args, circuit, run)


def _cmd_audit(args) -> int:
    """Audit DD integrity: of a checkpoint file, or of a live run."""
    from .dd import DDIntegrityError
    from .dd.package import Package
    from .dd.serialization import deserialize_dd
    from .simulation import load_checkpoint

    target = args.target
    is_checkpoint = args.kind == "checkpoint"
    if args.kind == "auto":
        try:
            with open(target, encoding="utf-8") as handle:
                head = json.load(handle)
            is_checkpoint = isinstance(head, dict) and "version" in head \
                and "state" in head
        except (json.JSONDecodeError, UnicodeDecodeError):
            is_checkpoint = False
    if is_checkpoint:
        try:
            checkpoint = load_checkpoint(target)
            package = Package()
            roots = [deserialize_dd(package, checkpoint.state)]
            if checkpoint.pending is not None:
                roots.append(deserialize_dd(package, checkpoint.pending))
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violations = package.check_invariants(roots)
        label = (f"checkpoint {target} (op "
                 f"{checkpoint.op_index}/{checkpoint.total_ops})")
    else:
        circuit = _load(target)
        engine = SimulationEngine()
        try:
            result = engine.simulate(circuit,
                                     strategy_from_spec(args.strategy),
                                     audit_every=args.audit_every)
        except DDIntegrityError as exc:
            print(f"AUDIT FAILED mid-run: {exc}", file=sys.stderr)
            return 1
        violations = engine.package.check_invariants([result.state])
        label = (f"circuit {target} "
                 f"({result.statistics.audits_run} in-run audits)")
    if violations:
        print(f"AUDIT FAILED: {label}: {len(violations)} violation(s)")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print(f"AUDIT OK: {label}: no violations")
    return 0


def _cmd_info(args) -> int:
    circuit = _load(args.circuit)
    print(f"qubits     : {circuit.num_qubits}")
    print(f"operations : {circuit.num_operations()}")
    print(f"depth      : {circuit.depth()}")
    print("gate counts:")
    for gate, count in circuit.count_gates().items():
        print(f"  {gate:>6}: {count}")
    return 0


def _cmd_equiv(args) -> int:
    circuit_a = _load(args.circuit_a)
    circuit_b = _load(args.circuit_b)
    result = check_equivalence(circuit_a, circuit_b, method=args.method)
    if result.equivalent:
        phase = result.global_phase
        note = "" if abs(phase - 1) < 1e-9 \
            else f" (up to global phase {phase:.4f})"
        print(f"EQUIVALENT{note}")
        return 0
    print("NOT equivalent")
    return 1


def _cmd_factor(args) -> int:
    from .algorithms import factor

    outcome = factor(args.number, mode=args.mode, seed=args.seed)
    if outcome.classical_shortcut:
        print(f"{args.number} = {outcome.factors[0]} x {outcome.factors[1]} "
              f"(classical shortcut: {outcome.classical_shortcut})")
        return 0
    if outcome.succeeded:
        attempts = len(outcome.attempts)
        print(f"{args.number} = {outcome.factors[0]} x {outcome.factors[1]} "
              f"({attempts} order-finding run(s))")
        return 0
    print(f"failed to factor {args.number} "
          f"(after {len(outcome.attempts)} attempts)")
    return 1


def _cmd_experiments(args) -> int:
    """Regenerate a paper artifact, optionally on parallel workers.

    The default artifact is the *schedule report*: every reported column
    is schedule-determined (no wall-clock), so the output is byte-identical
    across runs and ``--jobs`` counts -- CI diffs serial against parallel
    execution of exactly this command.
    """
    from .analysis.experiments import (run_fig8, run_fig9,
                                       run_reorder_study,
                                       run_schedule_report, run_table1,
                                       run_table2)
    from .analysis.reporting import format_result, write_markdown_table

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    runners = {
        "schedule": lambda: run_schedule_report(args.profile, jobs=args.jobs),
        "fig8": lambda: run_fig8(args.profile, jobs=args.jobs),
        "fig9": lambda: run_fig9(args.profile, jobs=args.jobs),
        "table1": lambda: run_table1(args.profile, jobs=args.jobs),
        "table2": lambda: run_table2(args.profile, jobs=args.jobs),
        "reorder": lambda: run_reorder_study(),
    }
    result = runners[args.experiment]()
    if args.markdown:
        print(write_markdown_table(result))
    else:
        print(format_result(result))
    return 0


def _sweep_tasks(spec: dict, args) -> list:
    """Build the task list from a sweep spec plus CLI overrides.

    ``circuits`` entries may be registry instance names (``"grover_8"``),
    paths to ``.qasm`` files, or ``{"qasm": path, "name": ...}`` dicts;
    QASM text is embedded into the task at parse time so workers never
    touch the filesystem.
    """
    import os.path

    from .analysis.instances import get_instance, instance_task_spec
    from .simulation.sweep import SweepTask, task_seed

    def pick(flag, key, default):
        return flag if flag is not None else spec.get(key, default)

    strategies = args.strategy or spec.get("strategies", ["sequential"])
    backends = args.backend or spec.get("backends", [None])
    repetitions = pick(args.repetitions, "repetitions", 1)
    base_seed = pick(args.seed, "seed", 0)
    timeout = pick(args.timeout, "timeout", None)
    max_nodes = pick(args.max_nodes, "max_nodes", None)
    gc_limit = pick(args.gc_limit, "gc_limit", None)
    reorder = pick(args.reorder, "reorder", None)
    if reorder is not None:
        # validate early: a malformed spec should fail the sweep, not
        # every individual cell
        from .simulation import reorder_from_spec
        reorder = None if reorder_from_spec(reorder) is None else reorder
    use_local_apply = bool(spec.get("use_local_apply", False))

    tasks = []
    for entry in spec.get("circuits", []):
        fault = None
        if isinstance(entry, dict):
            path = entry["qasm"]
            name = entry.get("name", os.path.basename(path))
            fault = entry.get("fault")
            with open(path, encoding="utf-8") as handle:
                kind, metadata, qasm = "qasm", {}, handle.read()
        elif entry.endswith(".qasm"):
            name = os.path.basename(entry)
            with open(entry, encoding="utf-8") as handle:
                kind, metadata, qasm = "qasm", {}, handle.read()
        else:
            name = entry
            kind = "instance"
            metadata = instance_task_spec(get_instance(entry))
            qasm = None
        for strategy in strategies:
            for backend in backends:
                # the backend joins the cell name so report keys stay
                # unique across the backend axis
                cell_name = name if backend is None \
                    else f"{name}@{backend}"
                for repetition in range(repetitions):
                    tasks.append(SweepTask(
                        name=cell_name, strategy=strategy,
                        repetition=repetition,
                        kind=kind, metadata=metadata, qasm=qasm,
                        use_local_apply=use_local_apply,
                        seed=task_seed(base_seed, cell_name, strategy,
                                       repetition),
                        timeout=timeout, max_nodes=max_nodes,
                        gc_limit=gc_limit, reorder=reorder,
                        backend=backend, fault=fault))
    return tasks


def _cmd_sweep(args) -> int:
    """Run a batch of cells from a JSON spec; exit 1 iff any cell failed."""
    from .simulation.sweep import SweepRunner

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        with open(args.spec, encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read sweep spec {args.spec}: {exc}",
              file=sys.stderr)
        return 2
    try:
        tasks = _sweep_tasks(spec, args)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: bad sweep spec: {exc}", file=sys.stderr)
        return 2
    if not tasks:
        print("error: sweep spec names no circuits", file=sys.stderr)
        return 2

    report = SweepRunner(jobs=args.jobs, retries=args.retries).run(tasks)

    for cell in report.cells:
        mark = "ok " if cell.ok else cell.status
        line = (f"{mark:>7}  {cell.name}  {cell.strategy}  "
                f"rep={cell.repetition}")
        if cell.ok:
            stats = cell.stats()
            line += (f"  mxv={stats.matrix_vector_mults} "
                     f"mxm={stats.matrix_matrix_mults} "
                     f"nodes={stats.final_state_nodes} "
                     f"t={cell.wall_seconds:.3f}s")
        else:
            error = cell.error or {}
            line += f"  {error.get('type')}: {error.get('message')}"
        print(line)
    counts = report.status_counts()
    summary = ", ".join(f"{count} {status}"
                        for status, count in sorted(counts.items()))
    print(f"sweep: {len(report.cells)} cells ({summary}), "
          f"jobs={report.jobs}, {report.wall_seconds:.3f}s")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(deterministic=args.deterministic),
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report: {args.output}")
    return 0 if report.all_ok else 1


def _parse_span(text: str, flag: str) -> tuple[int, int]:
    """Parse a ``LO:HI`` range flag."""
    try:
        low, _, high = text.partition(":")
        low_value, high_value = int(low), int(high or low)
    except ValueError:
        raise ValueError(f"{flag} expects LO:HI, got {text!r}") from None
    if low_value < 1 or high_value < low_value:
        raise ValueError(f"{flag} range {text!r} is empty or non-positive")
    return low_value, high_value


def _cmd_fuzz(args) -> int:
    """Differential / option-surface / mutation fuzzing.

    Exit 0 when every comparison held the fidelity floor, 1 when any
    backend or plan run disagreed (minimized reproducers printed, and
    written to ``--corpus`` when given), 2 on bad arguments.
    """
    from .verification.fuzz import (DifferentialFuzzer, FuzzConfig,
                                    register_broken_backend, run_mutation,
                                    run_plans, write_corpus)
    if args.replay_corpus:
        return _fuzz_replay(args)
    mode = "differential"
    if args.plan_options:
        mode = "plans"
    if args.mutate:
        if args.plan_options:
            print("error: --plan-options and --mutate are exclusive "
                  "campaign modes", file=sys.stderr)
            return 2
        mode = "mutate"
    budget = args.budget
    if budget is None and args.max_circuits is None:
        budget = 60.0
    try:
        min_qubits, max_qubits = _parse_span(args.qubits, "--qubits")
        min_operations, max_operations = _parse_span(args.ops, "--ops")
        plan_engine = "default"
        if args.inject_broken:
            if mode == "differential":
                register_broken_backend()
            else:
                # plan/mutate campaigns fuzz the engine, not the backend
                # pool: the planted bug lives on the reorder path
                plan_engine = "broken-reorder"
        backends = tuple(name for name in
                         (args.backends or "").split(",") if name)
        config = FuzzConfig(
            backends=backends, reference=args.reference,
            min_qubits=min_qubits, max_qubits=max_qubits,
            min_operations=min_operations, max_operations=max_operations,
            seed=args.seed, max_failures=args.max_failures,
            plan_engine=plan_engine)
        if args.jobs > 1:
            return _fuzz_parallel(args, config, budget, mode)
        if mode == "plans":
            report = run_plans(config, budget_seconds=budget,
                               max_cases=args.max_circuits)
        elif mode == "mutate":
            report = run_mutation(config, budget_seconds=budget,
                                  max_cases=args.max_circuits)
        else:
            report = DifferentialFuzzer(config).run(
                budget_seconds=budget, max_circuits=args.max_circuits)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    extra = ""
    if mode == "mutate":
        extra = (f", {report.coverage_buckets} coverage buckets "
                 f"({report.novel_cases} novel cases)")
    if report.cases_skipped:
        extra += f", {report.cases_skipped} budget-aborted (skipped)"
    print(f"fuzz [{mode}]: {report.circuits_checked} circuits, "
          f"{report.comparisons} comparisons across "
          f"{len(report.backends)} target(s) "
          f"({', '.join(report.backends)}), "
          f"{report.wall_seconds:.1f}s, seed {config.seed}{extra}")
    if args.corpus:
        paths = write_corpus(report, args.corpus)
        print(f"corpus: {len(paths)} file(s) in {args.corpus}")
    if report.ok:
        print(f"fuzz OK: fidelity floor {config.fidelity_floor} held "
              f"on every comparison")
        return 0
    print(f"fuzz FAILED: {len(report.failures)} disagreement(s)",
          file=sys.stderr)
    for failure in report.failures:
        print(f"\n{failure.summary()}", file=sys.stderr)
    return 1


def _fuzz_replay(args) -> int:
    """Replay a pinned reproducer corpus through every backend."""
    from .verification.corpus import load_corpus, replay_entry
    try:
        entries = load_corpus(args.replay_corpus)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failures = []
    for entry in entries:
        failures.extend(replay_entry(entry))
    print(f"corpus replay: {len(entries)} reproducer(s) from "
          f"{args.replay_corpus}")
    if not failures:
        print("corpus replay OK: every entry matched on every backend")
        return 0
    print(f"corpus replay FAILED: {len(failures)} regression(s)",
          file=sys.stderr)
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    return 1


def _fuzz_parallel(args, config, budget: float | None,
                   mode: str = "differential") -> int:
    """Fan one fuzz campaign out as ``kind="fuzz"`` sweep cells.

    Each worker cell fuzzes a rotated seed for the full budget (cells run
    concurrently, so wall time stays ~budget while coverage scales with
    ``--jobs``); failed cells carry the minimized reproducers in their
    error records.
    """
    import os.path

    from .simulation.sweep import SweepRunner, SweepTask, task_seed
    tasks = []
    for index in range(args.jobs):
        metadata = config.as_dict()
        # rotate the seed per cell so workers explore disjoint streams
        metadata["seed"] = config.seed + 7919 * index
        metadata["budget_seconds"] = budget
        metadata["mode"] = mode
        if args.max_circuits is not None:
            metadata["max_circuits"] = -(-args.max_circuits // args.jobs)
        if args.corpus:
            metadata["corpus"] = os.path.join(args.corpus, f"cell{index}")
        if args.inject_broken and mode == "differential":
            metadata["register_broken"] = True
        name = f"fuzz-{index}"
        tasks.append(SweepTask(
            name=name, strategy="fuzz", kind="fuzz", metadata=metadata,
            seed=task_seed(config.seed, name, "fuzz", 0)))
    report = SweepRunner(jobs=args.jobs).run(tasks)
    checked = sum(cell.stats().operations_applied
                  for cell in report.cells if cell.ok)
    print(f"fuzz: {len(report.cells)} parallel cells, "
          f"{checked} circuits in passing cells, jobs={args.jobs}, "
          f"{report.wall_seconds:.1f}s")
    for cell in report.failed_cells:
        error = cell.error or {}
        print(f"\nfuzz cell {cell.name} FAILED: "
              f"{error.get('message', error.get('type'))}",
              file=sys.stderr)
    if report.all_ok:
        print("fuzz OK: fidelity floor held on every comparison")
        return 0
    print(f"fuzz FAILED: {len(report.failed_cells)} cell(s) found "
          f"disagreements", file=sys.stderr)
    return 1


def _cmd_jobs_submit(args) -> int:
    """Durably enqueue one simulation job into a store directory."""
    from .service import JobSpec, JobStore, parse_fault

    if (args.qasm is None) == (args.instance is None):
        print("error: give exactly one of --qasm or --instance",
              file=sys.stderr)
        return 2
    try:
        parse_fault(args.fault)  # fail the submission, not every attempt
        if args.qasm is not None:
            import os.path
            with open(args.qasm, encoding="utf-8") as handle:
                qasm = handle.read()
            name = args.name or os.path.basename(args.qasm)
        else:
            from .analysis.instances import instance_qasm
            qasm = instance_qasm(args.instance)
            name = args.name or args.instance
        spec = JobSpec(
            name=name, qasm=qasm, strategy=args.strategy,
            use_local_apply=not args.paper, kernel=args.kernel,
            reorder=args.reorder, max_nodes=args.max_nodes,
            gc_limit=args.gc_limit, checkpoint_every=args.checkpoint_every,
            timeout=args.timeout, fault=args.fault)
        record = JobStore(args.store).submit(
            spec, max_attempts=args.max_attempts)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"submitted : {record.job_id} ({record.state}, "
          f"max {record.max_attempts} attempt(s))")
    return 0


def _cmd_jobs_run(args) -> int:
    """Supervise every queued job in the store to a terminal state."""
    from .service import JobStore, Supervisor, SupervisorConfig

    store = JobStore(args.store)
    if not store.list_ids():
        print(f"error: no jobs in {args.store} "
              f"(submit some with 'jobs submit')", file=sys.stderr)
        return 2
    config = SupervisorConfig(
        max_workers=args.workers, lease_seconds=args.lease,
        backoff_base=args.backoff_base,
        max_wall_seconds=args.max_wall_seconds)
    trace_sink = None
    if args.trace:
        from .simulation import JsonlTraceSink
        trace_sink = JsonlTraceSink(args.trace)
    try:
        report = Supervisor(store, config, trace=trace_sink).run()
    finally:
        if trace_sink is not None:
            trace_sink.close()
    for job_id, state in report.states.items():
        record = store.get(job_id)
        line = f"{state:>12}  {job_id}  attempts={record.attempts}"
        if record.result:
            line += (f"  resumed_from_op="
                     f"{record.result.get('resumed_from_op')}")
        if record.errors:
            line += f"  last_error={record.errors[-1].get('type')}"
        print(line)
    counts = ", ".join(f"{count} {state}"
                       for state, count in sorted(report.counts().items()))
    print(f"jobs: {len(report.states)} supervised ({counts}), "
          f"{report.retries} retries, {report.lease_expiries} lease "
          f"expiries, {report.recovered} recovered, "
          f"{report.wall_seconds:.3f}s")
    if args.trace:
        print(f"trace: {args.trace}")
    return 0 if report.all_done else 1


def _cmd_jobs_status(args) -> int:
    """Show every job record in the store."""
    from .service import JobStore

    store = JobStore(args.store)
    records = store.load_all()
    if args.json:
        payload = {
            "counts": store.counts(),
            "jobs": [record.as_dict() for record in records],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"no jobs in {args.store}")
        return 0
    for record in records:
        line = (f"{record.state:>12}  {record.job_id}  "
                f"attempts={record.attempts}/{record.max_attempts}  "
                f"strategy={record.spec.strategy}")
        if record.errors:
            line += f"  last_error={record.errors[-1].get('type')}"
        print(line)
    counts = ", ".join(f"{count} {state}"
                       for state, count in sorted(store.counts().items()))
    print(f"jobs: {len(records)} total ({counts})")
    return 0


def _cmd_jobs_retry(args) -> int:
    """Re-queue failed/quarantined jobs with a fresh attempt budget."""
    from .service import JobStateError, JobStore

    store = JobStore(args.store)
    status = 0
    for job_id in args.job_ids:
        try:
            record = store.get(job_id)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        if record.state not in ("failed", "quarantined"):
            print(f"skipped   : {job_id} is {record.state} "
                  f"(only failed/quarantined jobs can be retried)",
                  file=sys.stderr)
            status = status or 1
            continue
        try:
            # fresh budget: the error chain stays for the post-mortem,
            # but the attempt counter restarts
            record.attempts = 0
            record.not_before = 0.0
            store.transition(record, "queued", note="manual retry")
        except JobStateError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        print(f"requeued  : {job_id}")
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DD-based quantum-circuit simulation "
                    "(Zulehner & Wille, DATE 2019 reproduction).")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_run_options(command) -> None:
        """Options shared by ``simulate`` and ``resume``."""
        command.add_argument("--shots", type=int, default=0,
                             help="sample this many measurement shots")
        command.add_argument("--seed", type=int, default=0)
        command.add_argument("--amplitudes", action="store_true",
                             help="print non-negligible amplitudes")
        command.add_argument("--threshold", type=float, default=1e-6,
                             help="probability threshold for --amplitudes")
        command.add_argument("--limit", type=int, default=20,
                             help="max rows to print")
        command.add_argument("--gc-limit", type=int, default=500_000,
                             help="initial GC node limit; the memory governor "
                                  "grows it past a fully-reachable working "
                                  "set (default 500000)")
        command.add_argument("--max-nodes", type=int, default=None,
                             help="hard node budget: abort cleanly when the "
                                  "reachable working set exceeds this")
        command.add_argument("--trace", default=None, metavar="PATH",
                             help="write a per-step JSONL trace to PATH")
        command.add_argument("--checkpoint", default=None, metavar="PATH",
                             help="write resumable checkpoints to PATH "
                                  "(atomically; on interrupt/budget-abort, "
                                  "and every --checkpoint-every ops)")
        command.add_argument("--checkpoint-every", type=int, default=None,
                             metavar="N",
                             help="also checkpoint every N operations "
                                  "(requires --checkpoint)")
        command.add_argument("--degrade", action="store_true",
                             help="degrade gracefully instead of aborting "
                                  "when --max-nodes is exceeded: collect, "
                                  "shrink caches, then prune with a "
                                  "fidelity floor")
        command.add_argument("--fidelity-floor", type=float, default=0.99,
                             help="cumulative fidelity below which --degrade "
                                  "stops pruning (default 0.99)")
        command.add_argument("--audit-every", type=int, default=None,
                             metavar="K",
                             help="run the DD integrity auditor every K "
                                  "operations (fails fast on corruption)")
        command.add_argument("--reorder", default=None, metavar="POLICY",
                             help="mid-run variable reordering: 'governor' "
                                  "(sift on memory pressure, before any "
                                  "degradation), 'every=K' (sift every K "
                                  "operations), or 'off' (default)")

    simulate = commands.add_parser("simulate",
                                   help="simulate an OpenQASM circuit")
    simulate.add_argument("circuit", help="path to a .qasm file")
    simulate.add_argument("--strategy", default="sequential",
                          help="sequential | k=<n> | smax=<n> | adaptive | "
                               "repeating[:inner]")
    simulate.add_argument("--backend", default=None, metavar="NAME",
                          help="simulate through a registered backend: "
                               "dd | dd-iterative | dd-matrix | dense | "
                               "tensor-slot, or 'auto' to pick per circuit "
                               "from cheap predictors (decision recorded "
                               "in the statistics); default: the engine "
                               "fast path")
    simulate.add_argument("--initial", type=int, default=0,
                          help="initial basis state index")
    add_run_options(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    resume = commands.add_parser(
        "resume", help="resume a checkpointed simulation run")
    resume.add_argument("checkpoint_file",
                        help="checkpoint written by simulate --checkpoint")
    resume.add_argument("circuit",
                        help="the .qasm file the checkpoint came from")
    add_run_options(resume)
    resume.set_defaults(handler=_cmd_resume)

    audit = commands.add_parser(
        "audit", help="audit DD integrity of a checkpoint or a circuit run")
    audit.add_argument("target",
                       help="a checkpoint file or a .qasm circuit")
    audit.add_argument("--kind", default="auto",
                       choices=["auto", "checkpoint", "circuit"],
                       help="how to interpret TARGET (default: sniff JSON)")
    audit.add_argument("--strategy", default="sequential",
                       help="strategy for circuit audits")
    audit.add_argument("--audit-every", type=int, default=100, metavar="K",
                       help="in-run audit cadence for circuit audits "
                            "(default 100)")
    audit.set_defaults(handler=_cmd_audit)

    info = commands.add_parser("info", help="show circuit statistics")
    info.add_argument("circuit")
    info.set_defaults(handler=_cmd_info)

    equiv = commands.add_parser("equiv",
                                help="check two circuits for equivalence")
    equiv.add_argument("circuit_a")
    equiv.add_argument("circuit_b")
    equiv.add_argument("--method", default="miter",
                       choices=["miter", "pointer"])
    equiv.set_defaults(handler=_cmd_equiv)

    factor_cmd = commands.add_parser("factor",
                                     help="factor an integer with Shor")
    factor_cmd.add_argument("number", type=int)
    factor_cmd.add_argument("--mode", default="construct",
                            choices=["construct", "gates"])
    factor_cmd.add_argument("--seed", type=int, default=0)
    factor_cmd.set_defaults(handler=_cmd_factor)

    experiments = commands.add_parser(
        "experiments",
        help="regenerate a paper artifact (default: the deterministic "
             "schedule report), optionally on parallel workers")
    experiments.add_argument("experiment", nargs="?", default="schedule",
                             choices=["schedule", "fig8", "fig9",
                                      "table1", "table2", "reorder"],
                             help="artifact to regenerate "
                                  "(default: schedule -- byte-identical "
                                  "output for any --jobs)")
    experiments.add_argument("--profile", default="quick",
                             choices=["quick", "default", "full"],
                             help="instance-size profile (default: quick)")
    experiments.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes (default: 1, inline)")
    experiments.add_argument("--markdown", action="store_true",
                             help="emit a Markdown table")
    experiments.set_defaults(handler=_cmd_experiments)

    sweep = commands.add_parser(
        "sweep", help="run a batch of simulation cells from a JSON spec "
                      "over parallel workers")
    sweep.add_argument("spec",
                       help="JSON file: {circuits: [instance name | "
                            "file.qasm | {qasm: path}], strategies: [...], "
                            "repetitions, seed, timeout, max_nodes, "
                            "gc_limit, use_local_apply}")
    sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default: 1, inline)")
    sweep.add_argument("--strategy", action="append", metavar="SPEC",
                       help="override the spec's strategies (repeatable)")
    sweep.add_argument("--repetitions", type=int, default=None, metavar="R",
                       help="override the spec's repetitions per cell")
    sweep.add_argument("--seed", type=int, default=None,
                       help="override the spec's base seed (per-cell seeds "
                            "are derived deterministically from it)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-cell wall-clock budget in seconds")
    sweep.add_argument("--max-nodes", type=int, default=None,
                       help="per-cell hard DD node budget")
    sweep.add_argument("--gc-limit", type=int, default=None,
                       help="per-cell initial GC node limit")
    sweep.add_argument("--reorder", default=None, metavar="POLICY",
                       help="per-cell reorder policy ('governor' or "
                            "'every=K'; overrides the spec's 'reorder')")
    sweep.add_argument("--backend", action="append", metavar="NAME",
                       help="add a backend axis: run every cell through "
                            "each named registered backend (repeatable; "
                            "overrides the spec's 'backends')")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retries for cells whose worker died "
                            "(default: 1)")
    sweep.add_argument("--output", default=None, metavar="PATH",
                       help="write the full JSON report to PATH")
    sweep.add_argument("--deterministic", action="store_true",
                       help="restrict --output to fields that are "
                            "bit-identical across processes and job counts")
    sweep.set_defaults(handler=_cmd_sweep)

    jobs = commands.add_parser(
        "jobs", help="durable job queue: submit, supervise, inspect, retry")
    jobs_commands = jobs.add_subparsers(dest="jobs_command", required=True)

    jobs_submit = jobs_commands.add_parser(
        "submit", help="enqueue one simulation job into a store directory")
    jobs_submit.add_argument("store", help="job store directory "
                                           "(created if missing)")
    jobs_submit.add_argument("--qasm", default=None, metavar="PATH",
                             help="circuit file to embed into the job")
    jobs_submit.add_argument("--instance", default=None, metavar="NAME",
                             help="circuit-backed registry instance "
                                  "(e.g. grover_8) to embed as QASM")
    jobs_submit.add_argument("--name", default=None,
                             help="job name (default: file/instance name)")
    jobs_submit.add_argument("--strategy", default="sequential",
                             help="sequential | k=<n> | smax=<n> | adaptive "
                                  "| repeating[:inner]")
    jobs_submit.add_argument("--kernel", default=None,
                             choices=["recursive", "iterative"],
                             help="DD multiplication kernel")
    jobs_submit.add_argument("--reorder", default=None, metavar="POLICY",
                             help="mid-run reorder policy "
                                  "('governor' or 'every=K')")
    jobs_submit.add_argument("--paper", action="store_true",
                             help="paper-literal pathway (no local-apply "
                                  "fast path, no identity shortcut)")
    jobs_submit.add_argument("--max-nodes", type=int, default=None,
                             help="hard DD node budget per attempt")
    jobs_submit.add_argument("--gc-limit", type=int, default=None,
                             help="initial GC node limit")
    jobs_submit.add_argument("--checkpoint-every", type=int, default=25,
                             metavar="N",
                             help="periodic checkpoint cadence in "
                                  "operations (default 25)")
    jobs_submit.add_argument("--timeout", type=float, default=None,
                             metavar="S",
                             help="cooperative per-attempt deadline")
    jobs_submit.add_argument("--max-attempts", type=int, default=3,
                             help="attempts before quarantine (default 3)")
    jobs_submit.add_argument("--fault", default=None, metavar="SPEC",
                             help="chaos-testing fault spec (e.g. kill@12, "
                                  "latency=0.5, budget@7)")
    jobs_submit.set_defaults(handler=_cmd_jobs_submit)

    jobs_run = jobs_commands.add_parser(
        "run", help="supervise every queued job to a terminal state "
                    "(exit 0 iff all done)")
    jobs_run.add_argument("store", help="job store directory")
    jobs_run.add_argument("--workers", type=int, default=2, metavar="N",
                          help="concurrent worker processes (default 2)")
    jobs_run.add_argument("--lease", type=float, default=10.0, metavar="S",
                          help="heartbeat staleness that expires a lease "
                               "(default 10s)")
    jobs_run.add_argument("--backoff-base", type=float, default=0.2,
                          metavar="S",
                          help="first retry backoff; doubles per attempt "
                               "(default 0.2s)")
    jobs_run.add_argument("--max-wall-seconds", type=float, default=600.0,
                          metavar="S",
                          help="hard bound on the whole supervision run "
                               "(default 600s)")
    jobs_run.add_argument("--trace", default=None, metavar="PATH",
                          help="write supervision events as JSONL to PATH")
    jobs_run.set_defaults(handler=_cmd_jobs_run)

    jobs_status = jobs_commands.add_parser(
        "status", help="show every job record in the store")
    jobs_status.add_argument("store", help="job store directory")
    jobs_status.add_argument("--json", action="store_true",
                             help="machine-readable dump")
    jobs_status.set_defaults(handler=_cmd_jobs_status)

    jobs_retry = jobs_commands.add_parser(
        "retry", help="re-queue failed/quarantined jobs with a fresh "
                      "attempt budget")
    jobs_retry.add_argument("store", help="job store directory")
    jobs_retry.add_argument("job_ids", nargs="+", metavar="JOB_ID")
    jobs_retry.set_defaults(handler=_cmd_jobs_retry)

    fuzz = commands.add_parser(
        "fuzz", help="differential fuzzing: cross-check all registered "
                     "backends on random circuits at fidelity >= 1-1e-9; "
                     "failures are minimized into reproducers")
    fuzz.add_argument("--budget", type=float, default=None, metavar="S",
                      help="wall-clock fuzzing budget in seconds "
                           "(default 60 unless --max-circuits is given)")
    fuzz.add_argument("--max-circuits", type=int, default=None, metavar="N",
                      help="stop after N random circuits")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (CI rotates it per run)")
    fuzz.add_argument("--backends", default=None, metavar="A,B,...",
                      help="comma-separated backend pool "
                           "(default: every registered backend)")
    fuzz.add_argument("--reference", default="dense",
                      help="oracle backend every other one is compared "
                           "against (default: dense)")
    fuzz.add_argument("--qubits", default="2:6", metavar="LO:HI",
                      help="qubit-count range per circuit (default 2:6)")
    fuzz.add_argument("--ops", default="5:40", metavar="LO:HI",
                      help="operation-count range per circuit "
                           "(default 5:40)")
    fuzz.add_argument("--max-failures", type=int, default=5, metavar="N",
                      help="stop after N distinct failures (default 5)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="write minimized JSON reproducers (and a "
                           "campaign summary) into DIR")
    fuzz.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="fan the campaign out over N sweep worker "
                           "processes with rotated seeds (default: 1)")
    fuzz.add_argument("--inject-broken", action="store_true",
                      help="plant a deliberate bug first (a faulty backend "
                           "for differential mode, the reorder-path "
                           "BrokenReorderEngine for --plan-options/"
                           "--mutate); the campaign must then fail -- CI "
                           "uses this to prove the ratchet bites")
    fuzz.add_argument("--plan-options", action="store_true",
                      help="option-surface mode: every case runs a random "
                           "RunPlan (kernel, identity edges, strategy, "
                           "reordering, node budgets, checkpoint/resume) "
                           "against the dense oracle")
    fuzz.add_argument("--mutate", action="store_true",
                      help="coverage-guided mode: mutate the cases whose "
                           "runs lit up new engine-coverage buckets "
                           "(cache hit rates, reorder/degrade/cutover "
                           "counts, node bands)")
    fuzz.add_argument("--replay-corpus", default=None, metavar="DIR",
                      help="replay a pinned reproducer corpus through "
                           "every registered backend (and each entry's "
                           "plan) instead of fuzzing")
    fuzz.set_defaults(handler=_cmd_fuzz)

    bench = commands.add_parser(
        "bench", help="run the reproducible DD-kernel benchmark",
        add_help=False)
    bench.set_defaults(handler=_cmd_bench)

    # `bench` owns its full argument set in repro.bench; pass the remainder
    # through untouched so `python -m repro bench --smoke` just works.
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from .bench import main as bench_main
        return bench_main(argv[1:])

    args = parser.parse_args(argv)
    return args.handler(args)


def _cmd_bench(args) -> int:  # pragma: no cover - dispatched above
    from .bench import main as bench_main
    return bench_main([])


if __name__ == "__main__":
    sys.exit(main())
