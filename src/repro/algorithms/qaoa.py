"""QAOA for MaxCut: circuits, cost evaluation, and a small angle search.

Adds a variational workload to the benchmark families: QAOA states are
*dense* superpositions, so -- like the supremacy circuits -- they push the
state DD towards its worst case, while every gate stays a one- or two-qubit
DD.  Cost evaluation uses the Pauli-string machinery of
:mod:`repro.dd.observables`: the MaxCut objective is
``sum_edges (1 - <Z_u Z_v>) / 2``.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..dd.observables import pauli_expectation
from ..simulation.engine import SimulationEngine
from ..simulation.strategies import SimulationStrategy

__all__ = ["QaoaInstance", "qaoa_maxcut_circuit", "maxcut_value",
           "classical_maxcut_optimum", "maxcut_expectation",
           "ring_graph", "grid_graph", "optimise_qaoa_angles"]


def ring_graph(num_vertices: int) -> list[tuple[int, int]]:
    """The cycle graph C_n (MaxCut optimum: n for even n, n-1 for odd)."""
    if num_vertices < 3:
        raise ValueError("ring needs at least 3 vertices")
    return [(v, (v + 1) % num_vertices) for v in range(num_vertices)]


def grid_graph(rows: int, cols: int) -> list[tuple[int, int]]:
    """Edges of a rows x cols grid, vertices numbered row-major."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


def maxcut_value(edges: Sequence[tuple[int, int]], assignment: int) -> int:
    """Cut size of the bit-assignment ``assignment``."""
    return sum(1 for u, v in edges
               if ((assignment >> u) & 1) != ((assignment >> v) & 1))


def classical_maxcut_optimum(edges: Sequence[tuple[int, int]],
                             num_vertices: int) -> int:
    """Brute-force MaxCut optimum (for validation; exponential)."""
    return max(maxcut_value(edges, assignment)
               for assignment in range(1 << (num_vertices - 1)))


@dataclass
class QaoaInstance:
    """A QAOA MaxCut benchmark."""

    circuit: QuantumCircuit
    edges: list[tuple[int, int]]
    num_vertices: int
    gammas: tuple[float, ...]
    betas: tuple[float, ...]

    @property
    def name(self) -> str:
        return self.circuit.name

    @property
    def layers(self) -> int:
        return len(self.gammas)


def qaoa_maxcut_circuit(edges: Sequence[tuple[int, int]], num_vertices: int,
                        gammas: Sequence[float],
                        betas: Sequence[float]) -> QaoaInstance:
    """Standard QAOA ansatz: ``prod_p e^{-i beta_p B} e^{-i gamma_p C}``.

    The ZZ cost terms are compiled as ``CX - RZ(2 gamma) - CX``.
    """
    if len(gammas) != len(betas):
        raise ValueError("need one beta per gamma")
    if not gammas:
        raise ValueError("need at least one QAOA layer")
    edges = [(int(u), int(v)) for u, v in edges]
    for u, v in edges:
        if u == v or not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"bad edge ({u}, {v})")
    circuit = QuantumCircuit(
        num_vertices, name=f"qaoa_{num_vertices}_{len(gammas)}")
    for qubit in range(num_vertices):
        circuit.h(qubit)
    for gamma, beta in zip(gammas, betas):
        for u, v in edges:
            circuit.cx(u, v)
            circuit.rz(2 * gamma, v)
            circuit.cx(u, v)
        for qubit in range(num_vertices):
            circuit.rx(2 * beta, qubit)
    return QaoaInstance(circuit=circuit, edges=edges,
                        num_vertices=num_vertices,
                        gammas=tuple(gammas), betas=tuple(betas))


def maxcut_expectation(instance: QaoaInstance,
                       engine: SimulationEngine | None = None,
                       strategy: SimulationStrategy | None = None) -> float:
    """Simulate the ansatz and evaluate ``<C> = sum (1 - <Z_u Z_v>)/2``."""
    engine = engine or SimulationEngine()
    result = engine.simulate(instance.circuit, strategy)
    total = 0.0
    for u, v in instance.edges:
        correlation = pauli_expectation(engine.package, {u: "Z", v: "Z"},
                                        result.state,
                                        instance.num_vertices)
        total += (1.0 - correlation) / 2.0
    return total


def optimise_qaoa_angles(edges: Sequence[tuple[int, int]],
                         num_vertices: int, layers: int = 1,
                         grid_points: int = 8,
                         strategy: SimulationStrategy | None = None
                         ) -> tuple[QaoaInstance, float]:
    """Grid-search the QAOA angles; returns the best instance and its cut.

    A coarse but deterministic optimiser: gamma in ``(0, pi)``, beta in
    ``(0, pi/2)``, ``grid_points`` values each, all layers sharing the same
    angle pair (the standard symmetric restriction for small p).
    """
    if layers < 1:
        raise ValueError("need at least one layer")
    best_instance = None
    best_value = -1.0
    gammas = [math.pi * (k + 0.5) / grid_points for k in range(grid_points)]
    betas = [0.5 * math.pi * (k + 0.5) / grid_points
             for k in range(grid_points)]
    for gamma, beta in itertools.product(gammas, betas):
        instance = qaoa_maxcut_circuit(edges, num_vertices,
                                       [gamma] * layers, [beta] * layers)
        value = maxcut_expectation(instance, strategy=strategy)
        if value > best_value:
            best_value = value
            best_instance = instance
    assert best_instance is not None
    return best_instance, best_value
