"""Fourier-space arithmetic: the building blocks of Beauregard's Shor circuit.

Implements, as elementary-gate circuits (paper ref. [27], Beauregard 2003):

* :func:`append_phi_add_const` -- Draper's adder of a classical constant to a
  register in Fourier space (pure phase gates, optionally controlled);
* :func:`append_phi_add_const_mod` -- the doubly-controlled modular adder
  ``phi-ADD(a) mod N`` (Beauregard Fig. 5), using one ancilla;
* :func:`append_cmult_mod` -- the controlled modular multiply-accumulate
  ``|c; x; b> -> |c; x; b + a x mod N>`` (Beauregard Fig. 6);
* :func:`append_controlled_ua` -- the full controlled modular multiplier
  ``|c; x; 0; 0> -> |c; a x mod N; 0; 0>`` (Beauregard Fig. 7), i.e. the
  oracle ``U_a`` whose gate decomposition is what *DD-construct* avoids.

Registers are passed as explicit qubit-index lists (LSB first), so the same
blocks compose into any layout.  Values in Fourier space follow the
convention of :func:`repro.algorithms.qft.append_qft` (no swaps).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..circuit.circuit import QuantumCircuit
from .number_theory import modular_inverse
from .qft import append_iqft, append_qft

__all__ = [
    "append_phi_add_const",
    "append_add_const",
    "append_phi_add_const_mod",
    "append_cmult_mod",
    "append_controlled_ua",
]

_TWO_PI = 2 * math.pi


def _angle_for_qubit(value: int, j: int) -> float:
    """Phase angle ``2 pi value / 2^(j+1)`` reduced mod ``2 pi`` (0 if trivial)."""
    denominator = 1 << (j + 1)
    remainder = value % denominator
    if remainder == 0:
        return 0.0
    return _TWO_PI * remainder / denominator


def append_phi_add_const(circuit: QuantumCircuit, register: Sequence[int],
                         value: int, controls: Sequence = (),
                         subtract: bool = False) -> QuantumCircuit:
    """Add the classical constant ``value`` to a Fourier-space register.

    The register must currently hold ``phi(b)`` (see :func:`append_qft`);
    afterwards it holds ``phi(b + value mod 2^m)``.  Costs at most one phase
    gate per register qubit -- no carries, no ancillas (Draper 2000).
    """
    if subtract:
        value = -value
    controls = tuple(controls)
    for j, qubit in enumerate(register):
        angle = _angle_for_qubit(value, j)
        if angle == 0.0:
            continue
        if controls:
            circuit.add_operation("p", qubit, controls=controls,
                                  params=(angle,))
        else:
            circuit.p(angle, qubit)
    return circuit


def append_add_const(circuit: QuantumCircuit, register: Sequence[int],
                     value: int, controls: Sequence = ()) -> QuantumCircuit:
    """Plain-basis constant adder: QFT, phi-add, inverse QFT."""
    append_qft(circuit, register)
    append_phi_add_const(circuit, register, value, controls)
    append_iqft(circuit, register)
    return circuit


def append_phi_add_const_mod(circuit: QuantumCircuit, register: Sequence[int],
                             value: int, modulus: int, ancilla: int,
                             controls: Sequence = ()) -> QuantumCircuit:
    """Beauregard's modular adder: ``phi(b) -> phi((b + value) mod modulus)``.

    ``register`` must have one more qubit than the modulus needs (its MSB is
    the overflow sentinel) and hold a Fourier-space value ``b < modulus``.
    ``ancilla`` must be ``|0>`` and is returned to ``|0>``.  ``controls``
    guard the whole block (Beauregard uses two: the phase-estimation control
    and one multiplicand bit).
    """
    if not 0 <= value < modulus:
        value %= modulus
    if modulus >= 1 << (len(register) - 1):
        raise ValueError(
            f"register of {len(register)} qubits cannot hold the overflow "
            f"bit for modulus {modulus}; need n+1 qubits for an n-bit modulus")
    msb = register[-1]
    controls = tuple(controls)

    append_phi_add_const(circuit, register, value, controls)
    append_phi_add_const(circuit, register, modulus, subtract=True)
    # If b + value < modulus the subtraction underflowed: the MSB (sign
    # sentinel) is 1.  Copy it to the ancilla and conditionally re-add N.
    append_iqft(circuit, register)
    circuit.cx(msb, ancilla)
    append_qft(circuit, register)
    append_phi_add_const(circuit, register, modulus, controls=(ancilla,))
    # Restore the ancilla: after conditionally re-adding N we have
    # (b + value) mod N; comparing against `value` tells whether the
    # wrap-around happened, which uncomputes the ancilla.
    append_phi_add_const(circuit, register, value, controls, subtract=True)
    append_iqft(circuit, register)
    circuit.x(msb)
    circuit.cx(msb, ancilla)
    circuit.x(msb)
    append_qft(circuit, register)
    append_phi_add_const(circuit, register, value, controls)
    return circuit


def append_cmult_mod(circuit: QuantumCircuit, control: int,
                     x_register: Sequence[int], b_register: Sequence[int],
                     multiplier: int, modulus: int, ancilla: int,
                     inverse: bool = False) -> QuantumCircuit:
    """Controlled Fourier multiply-accumulate (Beauregard Fig. 6).

    Maps ``|c>|x>|b>`` to ``|c>|x>|b + a x mod N>`` when ``c = 1`` (or the
    subtractive inverse when ``inverse`` is set).  ``b_register`` needs
    ``n + 1`` qubits for an ``n``-bit modulus; ``ancilla`` starts/ends at
    ``|0>``.
    """
    block = QuantumCircuit(circuit.num_qubits, name="cmult")
    append_qft(block, b_register)
    for i, x_qubit in enumerate(x_register):
        partial = (multiplier * (1 << i)) % modulus
        append_phi_add_const_mod(block, b_register, partial, modulus,
                                 ancilla, controls=(control, x_qubit))
    append_iqft(block, b_register)
    if inverse:
        block = block.inverse()
    return circuit.compose(block)


def append_controlled_ua(circuit: QuantumCircuit, control: int,
                         x_register: Sequence[int], b_register: Sequence[int],
                         multiplier: int, modulus: int,
                         ancilla: int) -> QuantumCircuit:
    """Controlled in-place modular multiplication ``U_a`` (Beauregard Fig. 7).

    ``|c>|x>|0>|0> -> |c>|a x mod N>|0>|0>`` when ``c = 1``.  Requires
    ``gcd(multiplier, modulus) = 1`` (otherwise the map is irreversible).
    This is the oracle whose elementary decomposition costs thousands of
    gates and ``n + 2`` working qubits -- exactly what the *DD-construct*
    strategy replaces with one directly-built permutation DD.
    """
    if math.gcd(multiplier, modulus) != 1:
        raise ValueError(f"multiplier {multiplier} not coprime to modulus "
                         f"{modulus}")
    append_cmult_mod(circuit, control, x_register, b_register, multiplier,
                     modulus, ancilla)
    # Controlled swap of x and the low n qubits of b.
    for x_qubit, b_qubit in zip(x_register, b_register):
        circuit.cswap(control, x_qubit, b_qubit)
    inverse_multiplier = modular_inverse(multiplier, modulus)
    append_cmult_mod(circuit, control, x_register, b_register,
                     inverse_multiplier, modulus, ancilla, inverse=True)
    return circuit
