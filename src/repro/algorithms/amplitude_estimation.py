"""Quantum amplitude estimation (Brassard et al. 2002).

Estimates the success amplitude of a Grover-style search without running it
to completion: phase estimation on the Grover operator ``Q``, whose
eigenphases are ``+- 2 theta`` with ``sin^2 theta`` the success
probability.  Built entirely from existing pieces -- the Grover iteration,
:func:`controlled_circuit` (every gate gains one control), and the inverse
QFT -- so it doubles as an integration test of the circuit IR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit, RepeatedBlock
from ..circuit.operation import Operation
from .grover import grover_circuit
from .qft import append_iqft

__all__ = ["controlled_circuit", "AmplitudeEstimationInstance",
           "amplitude_estimation_circuit", "estimate_from_distribution"]


def controlled_circuit(circuit: QuantumCircuit, control: int,
                       num_qubits: int | None = None) -> QuantumCircuit:
    """Every operation of ``circuit`` with one extra (positive) control.

    Valid because a controlled product equals the product of controlled
    factors.  ``control`` must lie outside the original circuit's qubits.
    """
    num_qubits = num_qubits or max(circuit.num_qubits, control + 1)
    if control < circuit.num_qubits:
        raise ValueError(f"control {control} collides with the circuit's "
                         f"{circuit.num_qubits} qubits")
    result = QuantumCircuit(num_qubits, name=f"c_{circuit.name}")

    def transform(instructions):
        out = []
        for instruction in instructions:
            if isinstance(instruction, RepeatedBlock):
                out.append(RepeatedBlock(tuple(transform(instruction.body)),
                                         instruction.repetitions,
                                         instruction.label))
            else:
                out.append(Operation(
                    instruction.gate, instruction.target,
                    controls=instruction.controls + ((control, 1),),
                    params=instruction.params))
        return out

    result.extend(transform(circuit.instructions))
    return result


@dataclass
class AmplitudeEstimationInstance:
    """A QAE benchmark: circuit plus how to read the estimate."""

    circuit: QuantumCircuit
    num_data_qubits: int
    num_counting: int
    true_probability: float

    def probability_from_outcome(self, counting_value: int) -> float:
        """Convert a measured counting value into an amplitude estimate.

        The circuit's Grover operator is ``-G`` (the MCZ-based oracle and
        diffusion each carry a minus sign relative to the textbook
        reflections), so its eigenphases are ``pi +- 2 theta``.  A counting
        outcome ``y`` estimating ``phase = y / 2^m`` therefore gives
        ``a = sin^2(pi * phase - pi/2) = cos^2(pi * phase)``.
        """
        phase = counting_value / (1 << self.num_counting)
        return math.cos(math.pi * phase) ** 2


def amplitude_estimation_circuit(num_data_qubits: int, marked,
                                 num_counting: int
                                 ) -> AmplitudeEstimationInstance:
    """Canonical QAE for a Grover search oracle.

    Layout: data qubits ``0 .. n-1``, counting qubits ``n .. n+m-1``.
    The state-preparation operator ``A`` is the uniform superposition; the
    Grover operator ``Q`` (oracle + diffusion) is applied ``2^j`` times
    controlled on counting qubit ``j``, followed by the inverse QFT.
    """
    if num_counting < 1:
        raise ValueError("need at least one counting qubit")
    grover = grover_circuit(num_data_qubits, marked, iterations=1,
                            mark_repetition=False)
    # the iteration body = everything after the n preparation Hadamards
    iteration_ops = list(grover.circuit.operations())[num_data_qubits:]
    iteration = QuantumCircuit(num_data_qubits, name="grover_q")
    iteration.extend(iteration_ops)

    total = num_data_qubits + num_counting
    circuit = QuantumCircuit(total, name=f"qae_{num_data_qubits}"
                                         f"_{num_counting}")
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    for j in range(num_counting):
        counting_qubit = num_data_qubits + j
        circuit.h(counting_qubit)
        controlled = controlled_circuit(iteration, counting_qubit, total)
        circuit.add_repeated_block(controlled, 1 << j,
                                   label=f"cQ^{1 << j}")
    append_iqft(circuit, list(range(num_data_qubits, total)), do_swaps=True)
    true_probability = len(grover.marked) / (1 << num_data_qubits)
    return AmplitudeEstimationInstance(
        circuit=circuit, num_data_qubits=num_data_qubits,
        num_counting=num_counting, true_probability=true_probability)


def estimate_from_distribution(instance: AmplitudeEstimationInstance,
                               result) -> float:
    """Maximum-likelihood point estimate from a simulated distribution.

    Marginalises the counting register of a
    :class:`~repro.simulation.result.SimulationResult`, picks the most
    probable outcome and converts it to an amplitude.
    """
    size = 1 << instance.num_counting
    data_size = 1 << instance.num_data_qubits
    best_outcome = 0
    best_mass = -1.0
    for y in range(size):
        mass = sum(result.probability((y << instance.num_data_qubits) | x)
                   for x in range(data_size))
        if mass > best_mass:
            best_mass = mass
            best_outcome = y
    return instance.probability_from_outcome(best_outcome)
