"""Graph states: |+>^n followed by CZ on every edge.

Graph states are the resource states of measurement-based quantum
computation and a natural DD workload: their entanglement structure is the
graph itself, so the DD size tracks the graph's connectivity pattern.  The
stabilizer test (``X_v  prod_{u ~ v} Z_u`` has eigenvalue +1) gives exact
ground truth through the Pauli-observable machinery.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from ..dd.edge import Edge
from ..dd.observables import pauli_expectation
from ..dd.package import Package

__all__ = ["GraphStateInstance", "graph_state_circuit",
           "verify_graph_state_stabilizers"]


@dataclass
class GraphStateInstance:
    """A graph-state preparation benchmark."""

    circuit: QuantumCircuit
    edges: list[tuple[int, int]]
    num_vertices: int

    @property
    def name(self) -> str:
        return self.circuit.name

    def neighbours(self, vertex: int) -> list[int]:
        result = []
        for u, v in self.edges:
            if u == vertex:
                result.append(v)
            elif v == vertex:
                result.append(u)
        return sorted(result)


def graph_state_circuit(edges: Sequence[tuple[int, int]],
                        num_vertices: int) -> GraphStateInstance:
    """Prepare the graph state of ``(V, E)``: H everywhere, CZ per edge."""
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    normalised = []
    seen = set()
    for u, v in edges:
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise ValueError(f"edge ({u}, {v}) out of range")
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        normalised.append(key)
    circuit = QuantumCircuit(num_vertices,
                             name=f"graph_state_{num_vertices}")
    for vertex in range(num_vertices):
        circuit.h(vertex)
    for u, v in normalised:
        circuit.cz(u, v)
    return GraphStateInstance(circuit=circuit, edges=normalised,
                              num_vertices=num_vertices)


def verify_graph_state_stabilizers(package: Package, state: Edge,
                                   instance: GraphStateInstance,
                                   tolerance: float = 1e-9) -> bool:
    """Check every stabilizer ``K_v = X_v prod_{u~v} Z_u`` has <K_v> = 1."""
    for vertex in range(instance.num_vertices):
        pauli = {vertex: "X"}
        for neighbour in instance.neighbours(vertex):
            pauli[neighbour] = "Z"
        value = pauli_expectation(package, pauli, state,
                                  instance.num_vertices)
        if abs(value - 1.0) > tolerance:
            return False
    return True
