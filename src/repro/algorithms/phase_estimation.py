"""Textbook quantum phase estimation (QPE).

Shor's order finding (:mod:`repro.algorithms.shor`) is the semiclassical,
single-control-qubit incarnation of phase estimation; this module provides
the standard multi-qubit-counting-register form as a reusable algorithm and
as another benchmark family.  Given a single-qubit unitary ``U`` with
eigenstate ``|1>`` and eigenvalue ``exp(2 pi i theta)``, the circuit writes
an ``m``-bit estimate of ``theta`` into the counting register.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit
from .qft import append_iqft

__all__ = ["PhaseEstimationInstance", "phase_estimation_circuit",
           "ideal_outcome_distribution"]

_TWO_PI = 2 * math.pi


@dataclass
class PhaseEstimationInstance:
    """A QPE benchmark: circuit plus the metadata to read its result."""

    circuit: QuantumCircuit
    num_counting: int
    theta: float

    @property
    def eigen_qubit(self) -> int:
        return self.num_counting

    def estimate_from_outcome(self, outcome: int) -> float:
        """Convert a measured basis index to the phase estimate in [0, 1)."""
        counting = outcome & ((1 << self.num_counting) - 1)
        return counting / (1 << self.num_counting)

    def best_outcome(self) -> int:
        """The counting value the ideal distribution peaks at."""
        return round(self.theta * (1 << self.num_counting)) \
            % (1 << self.num_counting)


def phase_estimation_circuit(theta: float,
                             num_counting: int) -> PhaseEstimationInstance:
    """QPE of the phase gate ``p(2 pi theta)`` with ``num_counting`` bits.

    Layout: qubits ``0 .. num_counting-1`` are the counting register
    (little-endian), qubit ``num_counting`` is the eigenstate qubit
    (prepared in ``|1>``, the ``exp(2 pi i theta)`` eigenstate of the
    phase gate).
    """
    if num_counting < 1:
        raise ValueError("need at least one counting qubit")
    theta = theta % 1.0
    num_qubits = num_counting + 1
    eigen = num_counting
    circuit = QuantumCircuit(num_qubits,
                             name=f"qpe_{num_counting}")
    circuit.x(eigen)
    for qubit in range(num_counting):
        circuit.h(qubit)
    for j in range(num_counting):
        angle = (_TWO_PI * theta * (1 << j)) % _TWO_PI
        if angle:
            circuit.cp(angle, j, eigen)
    append_iqft(circuit, list(range(num_counting)), do_swaps=True)
    return PhaseEstimationInstance(circuit=circuit,
                                   num_counting=num_counting, theta=theta)


def ideal_outcome_distribution(theta: float,
                               num_counting: int) -> list[float]:
    """The exact outcome probabilities ``P(y)`` of ideal QPE.

    ``P(y) = |(1/2^m) sum_k exp(2 pi i k (theta - y/2^m))|^2`` -- the
    closed form the simulated distribution is tested against.
    """
    size = 1 << num_counting
    probabilities = []
    for y in range(size):
        delta = theta - y / size
        total = 0j
        for k in range(size):
            total += complex(math.cos(_TWO_PI * k * delta),
                             math.sin(_TWO_PI * k * delta))
        probabilities.append(abs(total / size) ** 2)
    return probabilities
