"""Classical number theory for Shor's algorithm.

Order finding on the quantum side yields a phase estimate ``y / 2^m``; the
classical side recovers the multiplicative order via continued fractions and
turns it into factors.  Everything here is deliberately dependency-free.
"""

from __future__ import annotations

import math
from fractions import Fraction

__all__ = [
    "modular_inverse",
    "multiplicative_order",
    "continued_fraction_convergents",
    "phase_to_order",
    "factors_from_order",
    "is_probable_prime",
    "random_shor_base",
]


def modular_inverse(a: int, modulus: int) -> int:
    """``a^-1 mod modulus``; raises ``ValueError`` if not coprime."""
    if math.gcd(a, modulus) != 1:
        raise ValueError(f"{a} has no inverse modulo {modulus}")
    return pow(a, -1, modulus)


def multiplicative_order(a: int, modulus: int) -> int:
    """Smallest ``r > 0`` with ``a^r = 1 (mod modulus)`` (brute force)."""
    if math.gcd(a, modulus) != 1:
        raise ValueError(f"{a} is not coprime to {modulus}")
    value = a % modulus
    r = 1
    while value != 1:
        value = (value * a) % modulus
        r += 1
        if r > modulus:  # pragma: no cover - unreachable for valid inputs
            raise RuntimeError("order search exceeded modulus")
    return r


def continued_fraction_convergents(numerator: int, denominator: int):
    """Yield the convergents ``p/q`` of ``numerator / denominator``."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    coefficients = []
    a, b = numerator, denominator
    while b:
        coefficients.append(a // b)
        a, b = b, a % b
    p_prev, p = 1, coefficients[0]
    q_prev, q = 0, 1
    yield Fraction(p, q)
    for coefficient in coefficients[1:]:
        p, p_prev = coefficient * p + p_prev, p
        q, q_prev = coefficient * q + q_prev, q
        yield Fraction(p, q)


def phase_to_order(y: int, precision_bits: int, modulus: int,
                   a: int) -> int | None:
    """Recover the order of ``a`` from a measured phase ``y / 2^precision_bits``.

    Tries the continued-fraction convergents with denominator below
    ``modulus``; also tries small multiples of each candidate denominator
    (the measured ``s/r`` may share a factor with ``r``).  Returns ``None``
    when no candidate verifies ``a^r = 1 (mod modulus)``.
    """
    if y == 0:
        return None
    for convergent in continued_fraction_convergents(y, 1 << precision_bits):
        candidate = convergent.denominator
        if candidate >= modulus:
            break
        for multiple in range(1, 5):
            r = candidate * multiple
            if r >= modulus:
                break
            if pow(a, r, modulus) == 1:
                return r
    return None


def factors_from_order(a: int, order: int, modulus: int) -> tuple[int, int] | None:
    """The classical final step of Shor: factors from an even order."""
    if order % 2 != 0:
        return None
    half_power = pow(a, order // 2, modulus)
    if half_power == modulus - 1:
        return None
    f1 = math.gcd(half_power - 1, modulus)
    f2 = math.gcd(half_power + 1, modulus)
    for factor in (f1, f2):
        if 1 < factor < modulus:
            return (factor, modulus // factor)
    return None


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are provably sufficient below 3.3 * 10^24.
    for witness in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(witness, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_shor_base(modulus: int, rng) -> int:
    """A uniformly random base ``a`` coprime to ``modulus`` (2 <= a < N)."""
    if modulus < 4:
        raise ValueError("modulus too small for Shor")
    while True:
        a = rng.randrange(2, modulus - 1)
        if math.gcd(a, modulus) == 1:
            return a
