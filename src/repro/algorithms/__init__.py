"""Benchmark algorithm generators: Grover, Shor, supremacy circuits, QFT.

These are the workloads of the paper's evaluation (Sec. V): Grover's search
(Table I), Shor's factoring via Beauregard's circuit and via DD-construct
(Table II), and Google supremacy-style random circuits (Figs. 8/9).
"""

from .arithmetic import (append_add_const, append_cmult_mod,
                         append_controlled_ua, append_phi_add_const,
                         append_phi_add_const_mod)
from .amplitude_estimation import (AmplitudeEstimationInstance,
                                   amplitude_estimation_circuit,
                                   controlled_circuit,
                                   estimate_from_distribution)
from .clifford import CliffordInstance, random_clifford_circuit
from .graph_states import (GraphStateInstance, graph_state_circuit,
                           verify_graph_state_stabilizers)
from .grover import (GroverInstance, grover_circuit, optimal_iterations,
                     success_probability)
from .number_theory import (continued_fraction_convergents,
                            factors_from_order, is_probable_prime,
                            modular_inverse, multiplicative_order,
                            phase_to_order, random_shor_base)
from .oracles import (BernsteinVaziraniInstance, DeutschJozsaInstance,
                      bernstein_vazirani_circuit, deutsch_jozsa_circuit)
from .pairing import PairingInstance, interleaved_order, pairing_circuit
from .phase_estimation import (PhaseEstimationInstance,
                               ideal_outcome_distribution,
                               phase_estimation_circuit)
from .qaoa import (QaoaInstance, classical_maxcut_optimum, grid_graph,
                   maxcut_expectation, maxcut_value, optimise_qaoa_angles,
                   qaoa_maxcut_circuit, ring_graph)
from .qft import append_iqft, append_qft, qft_circuit
from .shor import (FactoringOutcome, ShorOrderFinder, ShorResult,
                   beauregard_layout, controlled_ua_circuit, factor,
                   shor_phase_estimation_distribution)
from .supremacy import SupremacyInstance, cz_layer_pairs, supremacy_circuit

__all__ = [
    "AmplitudeEstimationInstance",
    "BernsteinVaziraniInstance",
    "CliffordInstance",
    "GraphStateInstance",
    "graph_state_circuit",
    "random_clifford_circuit",
    "verify_graph_state_stabilizers",
    "amplitude_estimation_circuit",
    "controlled_circuit",
    "estimate_from_distribution",
    "DeutschJozsaInstance",
    "FactoringOutcome",
    "GroverInstance",
    "PairingInstance",
    "interleaved_order",
    "pairing_circuit",
    "PhaseEstimationInstance",
    "QaoaInstance",
    "bernstein_vazirani_circuit",
    "classical_maxcut_optimum",
    "deutsch_jozsa_circuit",
    "grid_graph",
    "ideal_outcome_distribution",
    "maxcut_expectation",
    "maxcut_value",
    "optimise_qaoa_angles",
    "phase_estimation_circuit",
    "qaoa_maxcut_circuit",
    "ring_graph",
    "ShorOrderFinder",
    "ShorResult",
    "SupremacyInstance",
    "append_add_const",
    "append_cmult_mod",
    "append_controlled_ua",
    "append_iqft",
    "append_phi_add_const",
    "append_phi_add_const_mod",
    "append_qft",
    "beauregard_layout",
    "continued_fraction_convergents",
    "controlled_ua_circuit",
    "cz_layer_pairs",
    "factor",
    "factors_from_order",
    "grover_circuit",
    "is_probable_prime",
    "modular_inverse",
    "multiplicative_order",
    "optimal_iterations",
    "phase_to_order",
    "qft_circuit",
    "random_shor_base",
    "shor_phase_estimation_distribution",
    "success_probability",
    "supremacy_circuit",
]
