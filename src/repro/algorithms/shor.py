"""Shor's factoring algorithm (paper ref. [2]) in both simulation styles.

The paper's Table II compares three ways of simulating Shor's algorithm:

* ``t_sota`` -- the Beauregard 2n+3-qubit circuit (paper ref. [27]) built
  from elementary gates, simulated gate by gate (sequential strategy);
* ``t_general`` -- the same circuit simulated with one of the general
  combining strategies of Sec. IV-A;
* ``t_DD-construct`` -- the oracle components ``U_{a^{2^i}}`` constructed
  *directly* as permutation DDs on the ``n``-qubit work register (plus one
  control qubit, i.e. ``n + 1`` qubits in total), removing both the
  elementary decomposition and the working qubits (Sec. IV-B).

Both styles run the same *semiclassical* order-finding loop (one control
qubit reused ``2n`` times with intermediate measurement and classically
conditioned phase corrections -- paper footnote 7), so their measured
phases, recovered orders and factors are statistically identical; only the
simulation cost differs, by the orders of magnitude Table II reports.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from random import Random

from ..circuit.circuit import QuantumCircuit
from ..dd.edge import Edge
from ..dd.function_construction import (build_controlled_permutation_dd,
                                        build_permutation_dd,
                                        controlled_unitary_dd,
                                        modular_multiplication_permutation)
from ..dd.gate_building import build_gate_dd
from ..dd.measurement import measure_qubit
from ..simulation.engine import SimulationEngine
from ..simulation.statistics import SimulationStatistics
from ..simulation.strategies import SequentialStrategy, SimulationStrategy
from .arithmetic import append_controlled_ua
from .number_theory import (factors_from_order, multiplicative_order,
                            phase_to_order, random_shor_base)

__all__ = ["ShorResult", "ShorOrderFinder", "factor", "FactoringOutcome",
           "beauregard_layout", "controlled_ua_circuit",
           "shor_phase_estimation_distribution"]

_TWO_PI = 2 * math.pi


# ----------------------------------------------------------------------
# Beauregard circuit pieces (gate-level realisation)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BeauregardLayout:
    """Qubit layout of the 2n+3-qubit Beauregard order-finding circuit."""

    num_value_bits: int           # n = bit length of the modulus

    @property
    def b_register(self) -> tuple[int, ...]:
        """Accumulator register (n+1 qubits, includes the overflow bit)."""
        return tuple(range(self.num_value_bits + 1))

    @property
    def x_register(self) -> tuple[int, ...]:
        """Multiplicand register (n qubits, holds a^k mod N)."""
        n = self.num_value_bits
        return tuple(range(n + 1, 2 * n + 1))

    @property
    def ancilla(self) -> int:
        """Comparison ancilla of the modular adder."""
        return 2 * self.num_value_bits + 1

    @property
    def control(self) -> int:
        """The single reused phase-estimation control qubit (top)."""
        return 2 * self.num_value_bits + 2

    @property
    def num_qubits(self) -> int:
        return 2 * self.num_value_bits + 3


def beauregard_layout(modulus: int) -> BeauregardLayout:
    """Standard layout for factoring ``modulus`` (n = bit length of N)."""
    return BeauregardLayout(modulus.bit_length())


def controlled_ua_circuit(modulus: int, multiplier: int,
                          layout: BeauregardLayout | None = None) -> QuantumCircuit:
    """The controlled ``U_a`` oracle as an elementary-gate circuit."""
    layout = layout or beauregard_layout(modulus)
    circuit = QuantumCircuit(layout.num_qubits,
                             name=f"cua_{multiplier}_mod_{modulus}")
    append_controlled_ua(circuit, layout.control, list(layout.x_register),
                         list(layout.b_register), multiplier, modulus,
                         layout.ancilla)
    return circuit


# ----------------------------------------------------------------------
# order finding (the quantum core, both simulation styles)
# ----------------------------------------------------------------------

@dataclass
class ShorResult:
    """Outcome of one semiclassical order-finding run."""

    modulus: int
    base: int
    mode: str
    phase_bits: list[int] = field(default_factory=list)
    measured_value: int = 0
    precision_bits: int = 0
    order: int | None = None
    factors: tuple[int, int] | None = None
    statistics: SimulationStatistics = field(
        default_factory=SimulationStatistics)

    @property
    def measured_phase(self) -> float:
        """The estimated phase ``y / 2^m`` in ``[0, 1)``."""
        return self.measured_value / (1 << self.precision_bits)

    @property
    def succeeded(self) -> bool:
        return self.factors is not None


class ShorOrderFinder:
    """Semiclassical order finding for ``base`` modulo ``modulus``.

    Parameters
    ----------
    mode:
        ``"gates"`` -- simulate Beauregard's elementary-gate circuit on
        ``2n + 3`` qubits; the per-segment unitary parts are driven by
        ``strategy`` (sequential = the paper's ``t_sota`` column, a
        combining strategy = the ``t_general`` column).
        ``"construct"`` -- the *DD-construct* style: ``n + 1`` qubits and
        one directly built permutation DD per distinct oracle.
    strategy:
        Only meaningful for ``mode="gates"``.
    seed:
        Seeds the intermediate-measurement randomness.
    """

    def __init__(self, modulus: int, base: int, mode: str = "construct",
                 strategy: SimulationStrategy | None = None,
                 seed: int = 0,
                 engine: SimulationEngine | None = None) -> None:
        if modulus < 3:
            raise ValueError("modulus must be at least 3")
        if math.gcd(base, modulus) != 1:
            raise ValueError(f"base {base} shares a factor with {modulus}; "
                             "take gcd classically instead of running Shor")
        if mode not in ("gates", "construct"):
            raise ValueError(f"unknown mode {mode!r}")
        self.modulus = modulus
        self.base = base % modulus
        self.mode = mode
        self.strategy = strategy or SequentialStrategy()
        self.seed = seed
        self.engine = engine or SimulationEngine()
        self.num_value_bits = modulus.bit_length()
        self.precision_bits = 2 * self.num_value_bits

    # -- shared semiclassical loop --------------------------------------

    def run(self) -> ShorResult:
        """Run order finding once; classically post-process to factors."""
        result = ShorResult(modulus=self.modulus, base=self.base,
                            mode=self.mode,
                            precision_bits=self.precision_bits)
        result.statistics.strategy = (f"shor-{self.mode}"
                                      f"[{self.strategy.describe()}]"
                                      if self.mode == "gates"
                                      else "shor-dd-construct")
        result.statistics.circuit_name = (
            f"shor_{self.modulus}_{self.base}")
        rng = Random(self.seed)
        started = time.perf_counter()
        if self.mode == "gates":
            bits = self._run_gates(result, rng)
        else:
            bits = self._run_construct(result, rng)
        result.statistics.wall_time_seconds = time.perf_counter() - started
        result.phase_bits = bits
        result.measured_value = sum(bit << k for k, bit in enumerate(bits))
        result.order = phase_to_order(result.measured_value,
                                      self.precision_bits, self.modulus,
                                      self.base)
        if result.order is not None:
            result.factors = factors_from_order(self.base, result.order,
                                                self.modulus)
        return result

    def _correction_angle(self, bits: list[int]) -> float:
        """Semiclassical inverse-QFT rotation conditioned on earlier bits."""
        k = len(bits)
        angle = 0.0
        for j, bit in enumerate(bits):
            if bit:
                angle -= _TWO_PI / (1 << (k - j + 1))
        return angle

    def _multipliers(self) -> list[int]:
        """``a^(2^(m-1-k)) mod N`` for each semiclassical step ``k``."""
        return [pow(self.base, 1 << (self.precision_bits - 1 - k),
                    self.modulus)
                for k in range(self.precision_bits)]

    # -- gate-level realisation (sota / general columns) -----------------

    def _run_gates(self, result: ShorResult, rng: Random) -> list[int]:
        layout = beauregard_layout(self.modulus)
        engine = self.engine
        package = engine.package
        control = layout.control
        num_qubits = layout.num_qubits
        result.statistics.num_qubits = num_qubits
        # |x = 1>, everything else 0.
        state = package.basis_state(num_qubits, 1 << layout.x_register[0])
        bits: list[int] = []
        for multiplier in self._multipliers():
            segment = QuantumCircuit(num_qubits,
                                     name=result.statistics.circuit_name)
            segment.h(control)
            append_controlled_ua(segment, control, list(layout.x_register),
                                 list(layout.b_register), multiplier,
                                 self.modulus, layout.ancilla)
            angle = self._correction_angle(bits)
            if angle != 0.0:
                segment.p(angle, control)
            segment.h(control)
            run = engine.simulate(segment, self.strategy,
                                  initial_state=state)
            result.statistics.merge(run.statistics)
            bit, state, _ = measure_qubit(package, run.state, control, rng)
            if bit:
                # Reset the control for the next round.
                flip = engine.gate_dd(
                    _x_operation(control), num_qubits)
                state = package.multiply_matrix_vector(flip, state)
            bits.append(bit)
        result.statistics.final_state_nodes = package.count_nodes(state)
        return bits

    # -- DD-construct realisation (Table II right column) ----------------

    def _run_construct(self, result: ShorResult, rng: Random) -> list[int]:
        engine = self.engine
        package = engine.package
        n = self.num_value_bits
        control = n
        num_qubits = n + 1
        hadamard = build_gate_dd(package, _H_MATRIX, num_qubits, control)
        flip = build_gate_dd(package, _X_MATRIX, num_qubits, control)
        state = package.basis_state(num_qubits, 1)  # work register |1>
        oracle_cache: dict[int, Edge] = {}
        bits: list[int] = []
        for multiplier in self._multipliers():
            oracle = oracle_cache.get(multiplier)
            if oracle is None:
                permutation = modular_multiplication_permutation(
                    multiplier, self.modulus, n)
                oracle = build_controlled_permutation_dd(
                    package, permutation, n, num_controls=1)
                oracle_cache[multiplier] = oracle
                result.statistics.direct_constructions += 1
            else:
                result.statistics.reused_block_applications += 1
            state = self._apply(package, hadamard, state, result)
            state = self._apply(package, oracle, state, result)
            angle = self._correction_angle(bits)
            if angle != 0.0:
                rotation = build_gate_dd(
                    package, [[1, 0], [0, complex(math.cos(angle),
                                                  math.sin(angle))]],
                    num_qubits, control)
                state = self._apply(package, rotation, state, result)
            state = self._apply(package, hadamard, state, result)
            bit, state, _ = measure_qubit(package, state, control, rng)
            if bit:
                state = self._apply(package, flip, state, result)
            bits.append(bit)
        result.statistics.final_state_nodes = package.count_nodes(state)
        result.statistics.num_qubits = num_qubits
        return bits

    @staticmethod
    def _apply(package, matrix: Edge, state: Edge,
               result: ShorResult) -> Edge:
        state = package.multiply_matrix_vector(matrix, state)
        result.statistics.matrix_vector_mults += 1
        result.statistics.record_state_size(package.count_nodes(state))
        return state


def _x_operation(target: int):
    from ..circuit.operation import Operation

    return Operation("x", target)


_H_MATRIX = [[2 ** -0.5, 2 ** -0.5], [2 ** -0.5, -(2 ** -0.5)]]
_X_MATRIX = [[0, 1], [1, 0]]


# ----------------------------------------------------------------------
# fully-unitary phase estimation (textbook QPE form)
# ----------------------------------------------------------------------

def shor_phase_estimation_distribution(modulus: int, base: int,
                                       precision_bits: int | None = None,
                                       engine: SimulationEngine | None = None
                                       ) -> list[float]:
    """Exact outcome distribution of textbook (multi-qubit) order finding.

    Builds the full phase-estimation state with ``precision_bits`` counting
    qubits above an ``n``-qubit work register -- every controlled
    ``U_{a^{2^j}}`` constructed directly as a permutation DD (DD-construct
    style) -- applies the inverse QFT on the counting register, and returns
    the exact marginal probability of each counting outcome ``y``.

    The distribution peaks at multiples of ``2^t / r`` where ``r`` is the
    multiplicative order of ``base`` -- the ideal-QPE ground truth the
    semiclassical runs are validated against.
    """
    if math.gcd(base, modulus) != 1:
        raise ValueError(f"base {base} not coprime to {modulus}")
    n = modulus.bit_length()
    if precision_bits is None:
        precision_bits = 2 * n
    if precision_bits < 1:
        raise ValueError("need at least one counting qubit")
    engine = engine or SimulationEngine()
    package = engine.package
    total = n + precision_bits
    state = package.basis_state(total, 1)  # work register |1>
    for j in range(precision_bits):
        counting_qubit = n + j
        state = package.multiply_matrix_vector(
            build_gate_dd(package, _H_MATRIX, total, counting_qubit), state)
        multiplier = pow(base, 1 << j, modulus)
        oracle = build_permutation_dd(
            package,
            modular_multiplication_permutation(multiplier, modulus, n), n)
        controlled = controlled_unitary_dd(package, oracle, total,
                                           counting_qubit)
        state = package.multiply_matrix_vector(controlled, state)
    # inverse QFT on the counting register
    from .qft import append_iqft

    iqft = QuantumCircuit(total, name="iqft_counting")
    append_iqft(iqft, list(range(n, total)), do_swaps=True)
    state = engine.simulate(iqft, initial_state=state).state

    # marginal over the counting register: sum the squared amplitudes of
    # each counting value across all work-register values
    probabilities = []
    for y in range(1 << precision_bits):
        mass = 0.0
        for work in range(1 << n):
            amplitude = package.amplitude(state, (y << n) | work)
            mass += abs(amplitude) ** 2
        probabilities.append(mass)
    return probabilities


# ----------------------------------------------------------------------
# full factoring loop
# ----------------------------------------------------------------------

@dataclass
class FactoringOutcome:
    """Result of the complete (classical + quantum) factoring procedure."""

    modulus: int
    factors: tuple[int, int] | None
    attempts: list[ShorResult]
    classical_shortcut: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.factors is not None


def factor(modulus: int, mode: str = "construct",
           strategy: SimulationStrategy | None = None, seed: int = 0,
           max_attempts: int = 10,
           engine: SimulationEngine | None = None) -> FactoringOutcome:
    """Factor ``modulus`` with Shor's algorithm (simulated).

    Classical shortcuts (even numbers, perfect powers, lucky gcd draws) are
    taken where Shor's original algorithm takes them; otherwise up to
    ``max_attempts`` order-finding runs with random bases are made.
    """
    if modulus < 4:
        raise ValueError("nothing to factor")
    if modulus % 2 == 0:
        return FactoringOutcome(modulus, (2, modulus // 2), [],
                                classical_shortcut="even")
    root = round(math.isqrt(modulus))
    for exponent in range(2, modulus.bit_length() + 1):
        base = round(modulus ** (1.0 / exponent))
        for candidate in (base - 1, base, base + 1):
            if candidate > 1 and candidate ** exponent == modulus:
                return FactoringOutcome(
                    modulus, (candidate, modulus // candidate), [],
                    classical_shortcut=f"perfect power {candidate}^{exponent}")
    del root

    rng = Random(seed)
    attempts: list[ShorResult] = []
    for attempt in range(max_attempts):
        a = random_shor_base(modulus, rng)
        shared = math.gcd(a, modulus)
        if shared != 1:  # pragma: no cover - random_shor_base avoids this
            return FactoringOutcome(modulus, (shared, modulus // shared),
                                    attempts,
                                    classical_shortcut=f"gcd({a}, N)")
        finder = ShorOrderFinder(modulus, a, mode=mode, strategy=strategy,
                                 seed=rng.randrange(1 << 30), engine=engine)
        result = finder.run()
        attempts.append(result)
        if result.factors is not None:
            return FactoringOutcome(modulus, result.factors, attempts)
    return FactoringOutcome(modulus, None, attempts)
