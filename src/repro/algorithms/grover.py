"""Grover's database-search algorithm (paper ref. [3]).

Produces circuits with the repeated-iteration structure of the paper's
Fig. 6: an initial superposition layer followed by ``iterations`` copies of
the Grover iteration (oracle + diffusion).  The iteration is emitted as a
:class:`~repro.circuit.circuit.RepeatedBlock`, which is the structural
knowledge the *DD-repeating* strategy consumes (Table I): the iteration's
operations are combined into one matrix DD once and re-used for every
further iteration.

Two oracle styles are available:

* ``phase`` (default) -- a phase oracle flipping the sign of the marked
  element via a multi-controlled Z; uses ``n`` qubits.
* ``ancilla`` -- the textbook bit-flip oracle against an ancilla prepared in
  ``|->``; uses ``n + 1`` qubits (closer to how oracle circuits are given in
  practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit

__all__ = ["GroverInstance", "grover_circuit", "optimal_iterations",
           "success_probability"]


def optimal_iterations(num_data_qubits: int, num_marked: int = 1) -> int:
    """Iteration count maximising the success probability.

    ``~ pi/4 * sqrt(2^n / m)`` for ``m`` marked elements.
    """
    size = 1 << num_data_qubits
    if not 1 <= num_marked < size:
        raise ValueError(f"need 1 <= marked count < {size}")
    theta = math.asin(math.sqrt(num_marked / size))
    return max(1, int(math.floor(math.pi / (4 * theta))))


def success_probability(num_data_qubits: int, iterations: int,
                        num_marked: int = 1) -> float:
    """Closed-form probability of measuring *any* marked element.

    ``sin^2((2k + 1) theta)`` with ``sin theta = sqrt(m / 2^n)`` -- the
    ground truth the simulator is validated against.
    """
    theta = math.asin(math.sqrt(num_marked / (1 << num_data_qubits)))
    return math.sin((2 * iterations + 1) * theta) ** 2


@dataclass
class GroverInstance:
    """A concrete Grover benchmark: circuit plus its ground-truth metadata."""

    circuit: QuantumCircuit
    num_data_qubits: int
    marked: tuple[int, ...]
    iterations: int
    oracle_style: str

    @property
    def name(self) -> str:
        return self.circuit.name

    def expected_success_probability(self) -> float:
        return success_probability(self.num_data_qubits, self.iterations,
                                   len(self.marked))

    def measured_success_probability(self, result) -> float:
        """Probability that the data register reads *any* marked element.

        ``result`` is a :class:`~repro.simulation.result.SimulationResult`.
        For the ancilla oracle the ancilla stays in ``|->``, so both ancilla
        outcomes are summed.
        """
        total = 0.0
        for marked in self.marked:
            if self.oracle_style == "ancilla":
                high = 1 << self.num_data_qubits
                total += (result.probability(marked)
                          + result.probability(marked | high))
            else:
                total += result.probability(marked)
        return total


def _append_oracle(circuit: QuantumCircuit, data: list[int],
                   marked: tuple[int, ...], style: str,
                   ancilla: int | None) -> None:
    for element in marked:
        zero_bits = [q for q in data if not (element >> q) & 1]
        for qubit in zero_bits:
            circuit.x(qubit)
        if style == "phase":
            circuit.mcz(data[:-1], data[-1])
        else:
            circuit.mcx(data, ancilla)
        for qubit in zero_bits:
            circuit.x(qubit)


def _append_diffusion(circuit: QuantumCircuit, data: list[int]) -> None:
    for qubit in data:
        circuit.h(qubit)
    for qubit in data:
        circuit.x(qubit)
    circuit.mcz(data[:-1], data[-1])
    for qubit in data:
        circuit.x(qubit)
    for qubit in data:
        circuit.h(qubit)


def grover_circuit(num_data_qubits: int,
                   marked: int | tuple[int, ...] | list[int],
                   iterations: int | None = None,
                   oracle_style: str = "phase",
                   mark_repetition: bool = True) -> GroverInstance:
    """Build a Grover search benchmark.

    Parameters
    ----------
    num_data_qubits:
        Size of the searched database is ``2^num_data_qubits``.
    marked:
        The database index the oracle marks, or a collection of indices for
        a multi-solution search.
    iterations:
        Grover iterations; defaults to the optimal count for the number of
        marked elements.
    oracle_style:
        ``"phase"`` or ``"ancilla"`` (see module docstring).
    mark_repetition:
        Emit the iteration as a :class:`RepeatedBlock` (default).  With
        ``False`` the iterations are unrolled inline -- the circuit a
        structure-unaware simulator would see; both forms simulate to the
        same state.
    """
    if num_data_qubits < 2:
        raise ValueError("Grover needs at least 2 data qubits")
    if isinstance(marked, int):
        marked = (marked,)
    else:
        marked = tuple(dict.fromkeys(int(m) for m in marked))
    if not marked:
        raise ValueError("need at least one marked element")
    for element in marked:
        if not 0 <= element < 1 << num_data_qubits:
            raise ValueError(f"marked index {element} out of range")
    if len(marked) >= 1 << num_data_qubits:
        raise ValueError("cannot mark the whole database")
    if oracle_style not in ("phase", "ancilla"):
        raise ValueError(f"unknown oracle style {oracle_style!r}")
    if iterations is None:
        iterations = optimal_iterations(num_data_qubits, len(marked))

    data = list(range(num_data_qubits))
    num_qubits = num_data_qubits + (1 if oracle_style == "ancilla" else 0)
    ancilla = num_data_qubits if oracle_style == "ancilla" else None

    circuit = QuantumCircuit(num_qubits,
                             name=f"grover_{num_data_qubits}")
    # Preparation: uniform superposition (and |-> on the ancilla).
    if ancilla is not None:
        circuit.x(ancilla)
        circuit.h(ancilla)
    for qubit in data:
        circuit.h(qubit)

    iteration = QuantumCircuit(num_qubits, name="grover_iteration")
    _append_oracle(iteration, data, marked, oracle_style, ancilla)
    _append_diffusion(iteration, data)

    if mark_repetition:
        circuit.add_repeated_block(iteration, iterations,
                                   label="grover_iteration")
    else:
        for _ in range(iterations):
            circuit.compose(iteration)

    return GroverInstance(circuit=circuit, num_data_qubits=num_data_qubits,
                          marked=marked, iterations=iterations,
                          oracle_style=oracle_style)
