"""Random Clifford circuits -- a structured random workload family.

Clifford circuits (gates from {H, S, CX}) map stabilizer states to
stabilizer states.  Their DDs are not guaranteed small, but in practice
stay far below the Haar-random worst case the supremacy circuits approach
-- making them the *contrast class* in scaling studies: structured
randomness vs. chaotic randomness.  All generation is seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..circuit.circuit import QuantumCircuit

__all__ = ["CliffordInstance", "random_clifford_circuit"]

_SINGLE = ("h", "s")


@dataclass
class CliffordInstance:
    """A generated random Clifford benchmark."""

    circuit: QuantumCircuit
    num_qubits: int
    depth: int
    seed: int

    @property
    def name(self) -> str:
        return self.circuit.name


def random_clifford_circuit(num_qubits: int, depth: int,
                            seed: int = 0,
                            two_qubit_fraction: float = 0.4
                            ) -> CliffordInstance:
    """Generate a random {H, S, CX} circuit of ``depth`` layers.

    Each layer places one gate per qubit slot: with probability
    ``two_qubit_fraction`` a CX onto a random distinct partner (consuming
    both slots), otherwise a random single-qubit Clifford gate.
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    if depth < 1:
        raise ValueError("depth must be positive")
    if not 0.0 <= two_qubit_fraction <= 1.0:
        raise ValueError("two_qubit_fraction must be a probability")
    rng = Random(seed)
    circuit = QuantumCircuit(num_qubits,
                             name=f"clifford_{depth}_{num_qubits}")
    for _ in range(depth):
        available = list(range(num_qubits))
        rng.shuffle(available)
        while available:
            qubit = available.pop()
            if (len(available) >= 1
                    and rng.random() < two_qubit_fraction):
                partner = available.pop(rng.randrange(len(available)))
                circuit.cx(qubit, partner)
            else:
                gate = rng.choice(_SINGLE)
                circuit.add_operation(gate, qubit)
    return CliffordInstance(circuit=circuit, num_qubits=num_qubits,
                            depth=depth, seed=seed)
