"""Quantum Fourier transform circuits.

Two forms are provided:

* :func:`qft_circuit` -- the textbook QFT as a standalone circuit, realising
  the DFT matrix ``F[x, y] = omega^{x y} / sqrt(2^n)`` in the package's
  little-endian basis ordering (bit ``k`` of a basis index is qubit ``k``).
* :func:`append_qft` / :func:`append_iqft` -- the *no-swap* variant appended
  in-place onto a sub-register, which is the form Draper-style Fourier
  arithmetic uses (after it, qubit ``j`` of the sub-register carries the
  phase ``exp(2 pi i b / 2^(j+1))`` of the register value ``b``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..circuit.circuit import QuantumCircuit

__all__ = ["qft_circuit", "append_qft", "append_iqft"]


def append_qft(circuit: QuantumCircuit, qubits: Sequence[int],
               do_swaps: bool = False) -> QuantumCircuit:
    """Append a QFT acting on ``qubits`` (listed LSB first).

    Without swaps (the default, as used by Fourier arithmetic), qubit
    ``qubits[j]`` ends up holding the phase ``exp(2 pi i b / 2^(j+1))``.
    With swaps the full little-endian DFT results.
    """
    qubits = list(qubits)
    m = len(qubits)
    for j in reversed(range(m)):
        circuit.h(qubits[j])
        for k in reversed(range(j)):
            circuit.cp(math.pi / (1 << (j - k)), qubits[k], qubits[j])
    if do_swaps:
        for i in range(m // 2):
            circuit.swap(qubits[i], qubits[m - 1 - i])
    return circuit


def append_iqft(circuit: QuantumCircuit, qubits: Sequence[int],
                do_swaps: bool = False) -> QuantumCircuit:
    """Append the inverse QFT on ``qubits`` (adjoint of :func:`append_qft`)."""
    qubits = list(qubits)
    m = len(qubits)
    if do_swaps:
        for i in range(m // 2):
            circuit.swap(qubits[i], qubits[m - 1 - i])
    for j in range(m):
        for k in range(j):
            circuit.cp(-math.pi / (1 << (j - k)), qubits[k], qubits[j])
        circuit.h(qubits[j])
    return circuit


def qft_circuit(num_qubits: int, inverse: bool = False,
                do_swaps: bool = True) -> QuantumCircuit:
    """The QFT (or its inverse) as a standalone ``num_qubits`` circuit."""
    name = "iqft" if inverse else "qft"
    circuit = QuantumCircuit(num_qubits, name=f"{name}_{num_qubits}")
    qubits = list(range(num_qubits))
    if inverse:
        append_iqft(circuit, qubits, do_swaps=do_swaps)
    else:
        append_qft(circuit, qubits, do_swaps=do_swaps)
    return circuit
