"""Random circuits in the style of the Google quantum-supremacy benchmarks.

Generates circuits following the construction rules of Boixo et al.,
"Characterizing quantum supremacy in near-term devices" (paper ref. [11]):
qubits on a 2-D grid, a first clock cycle of Hadamards, then cycles of
staggered CZ layers interleaved with randomly chosen single-qubit gates from
``{X^1/2, Y^1/2, T}``.

The gate-placement rules (documented on :func:`supremacy_circuit`) follow
the published ones; the CZ stagger pattern is an eight-configuration tiling
equivalent in structure to the published layouts.  What matters for the
reproduction is the *simulation regime* these circuits induce -- state DDs
that grow rapidly while every gate DD stays linear -- which is exactly the
situation where combining operations pays off (paper Example 3 / Fig. 5 is
taken from such a circuit).

All randomness is drawn from an explicit seed: the same
``(rows, cols, depth, seed)`` always yields the same circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..circuit.circuit import QuantumCircuit

__all__ = ["SupremacyInstance", "supremacy_circuit", "cz_layer_pairs"]

_SINGLE_QUBIT_GATES = ("sx", "sy", "t")


def cz_layer_pairs(rows: int, cols: int,
                   configuration: int) -> list[tuple[int, int]]:
    """Qubit pairs coupled by CZ in one of the eight stagger configurations.

    Configurations 0-3 couple horizontal neighbours, 4-7 vertical ones; the
    two offset bits stagger the pattern so that over eight consecutive
    layers every grid edge is activated exactly once.
    """
    if not 0 <= configuration < 8:
        raise ValueError("configuration must be in 0..7")
    pairs = []
    horizontal = configuration < 4
    offset_a = configuration & 1
    offset_b = (configuration >> 1) & 1
    if horizontal:
        for r in range(rows):
            for c in range(offset_a, cols - 1, 2):
                if (r + (c >> 1)) % 2 == offset_b:
                    pairs.append((r * cols + c, r * cols + c + 1))
    else:
        for c in range(cols):
            for r in range(offset_a, rows - 1, 2):
                if (c + (r >> 1)) % 2 == offset_b:
                    pairs.append((r * cols + c, (r + 1) * cols + c))
    return pairs


@dataclass
class SupremacyInstance:
    """A generated random-circuit benchmark with its parameters."""

    circuit: QuantumCircuit
    rows: int
    cols: int
    depth: int
    seed: int

    @property
    def name(self) -> str:
        return self.circuit.name

    @property
    def num_qubits(self) -> int:
        return self.rows * self.cols


def supremacy_circuit(rows: int, cols: int, depth: int,
                      seed: int = 0) -> SupremacyInstance:
    """Generate a Boixo-style random circuit of ``depth`` clock cycles.

    Placement rules per cycle ``d >= 1`` (cycle 0 is Hadamards everywhere):

    1. CZ gates according to configuration ``(d - 1) mod 8``.
    2. A single-qubit gate is placed on every qubit that was part of a CZ in
       the *previous* cycle and is not part of one in this cycle:
       * the first single-qubit gate a qubit receives (after the initial H)
         is always ``T``;
       * otherwise the gate is drawn uniformly from ``{X^1/2, Y^1/2, T}``
         but never repeats the qubit's previous single-qubit gate.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    if depth < 1:
        raise ValueError("depth must be at least 1")
    num_qubits = rows * cols
    rng = Random(seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"supremacy_{depth}_{num_qubits}")

    for qubit in range(num_qubits):
        circuit.h(qubit)

    last_single_gate: dict[int, str | None] = {q: None
                                               for q in range(num_qubits)}
    in_cz_previous: set[int] = set()
    for cycle in range(1, depth):
        pairs = cz_layer_pairs(rows, cols, (cycle - 1) % 8)
        in_cz_now = {qubit for pair in pairs for qubit in pair}
        for qubit in range(num_qubits):
            if qubit in in_cz_previous and qubit not in in_cz_now:
                previous = last_single_gate[qubit]
                if previous is None:
                    gate = "t"
                else:
                    gate = rng.choice([g for g in _SINGLE_QUBIT_GATES
                                       if g != previous])
                circuit.add_operation(gate, qubit)
                last_single_gate[qubit] = gate
        for a, b in pairs:
            circuit.cz(a, b)
        in_cz_previous = in_cz_now

    return SupremacyInstance(circuit=circuit, rows=rows, cols=cols,
                             depth=depth, seed=seed)
