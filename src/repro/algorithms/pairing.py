"""Qubit-pairing circuits: the variable-ordering worst case.

The state ``sum_x |x>|x>`` -- qubit ``i`` maximally entangled with qubit
``i + n/2`` -- is the textbook adversary of a fixed variable order: under
the natural order the DD must remember all ``2^(n/2)`` values of the first
half before the second half can check them, so the state DD is exponential
in ``n``.  Bring each pair adjacent (the interleaved order
``0, n/2, 1, n/2+1, ...``) and the same state is *linear*: every pair
collapses to a two-level equality gadget.

That makes these circuits the canonical end-to-end test for mid-run
reordering (:mod:`repro.simulation.reorder`): an unsifted run blows any
node budget that a sifted run sails under, while the amplitudes stay
identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit

__all__ = ["PairingInstance", "pairing_circuit", "interleaved_order"]


@dataclass
class PairingInstance:
    """A pairing-entanglement benchmark circuit."""

    circuit: QuantumCircuit
    #: number of Bell pairs (half the qubit count)
    pairs: int

    @property
    def name(self) -> str:
        return self.circuit.name

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits


def interleaved_order(pairs: int) -> list[int]:
    """The pair-adjacent permutation: qubit ``i`` -> level ``2i``, qubit
    ``i + pairs`` -> level ``2i + 1`` (partners end up on neighbouring
    levels, where the DD is linear)."""
    permutation = [0] * (2 * pairs)
    for i in range(pairs):
        permutation[i] = 2 * i
        permutation[i + pairs] = 2 * i + 1
    return permutation


def pairing_circuit(pairs: int, tail_layers: int = 0) -> PairingInstance:
    """Entangle qubit ``i`` with qubit ``i + pairs`` for every ``i``.

    ``H(i)`` then ``CX(i, i + pairs)`` per pair prepares ``sum_x |x>|x>``
    (up to normalisation) -- exponential under the natural order, linear
    under the interleaved one.  ``tail_layers`` appends that many layers of
    single-qubit T gates after the entangling stage: they keep the state's
    structure (and DD size) fixed while extending the operation stream, so
    governed runs have post-pressure operations left to simulate under the
    reordered variables.
    """
    if pairs < 1:
        raise ValueError(f"need at least one pair, got {pairs}")
    if tail_layers < 0:
        raise ValueError(f"tail_layers must be >= 0, got {tail_layers}")
    num_qubits = 2 * pairs
    circuit = QuantumCircuit(num_qubits, name=f"pairing_{pairs}")
    for i in range(pairs):
        circuit.h(i)
        circuit.cx(i, i + pairs)
    for _ in range(tail_layers):
        for qubit in range(num_qubits):
            circuit.add_operation("t", qubit)
    return PairingInstance(circuit=circuit, pairs=pairs)
