"""Classic oracle algorithms: Bernstein-Vazirani and Deutsch-Jozsa.

Both are single-query oracle algorithms whose circuits are almost entirely
Boolean structure -- ideal DD citizens (states stay linear-sized) and a
clean demonstration of the ancilla-oracle pattern used by Grover's
``oracle_style="ancilla"`` variant.

Layout for both: data qubits ``0 .. n-1``, ancilla qubit ``n`` (prepared in
``|->``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.circuit import QuantumCircuit

__all__ = ["BernsteinVaziraniInstance", "bernstein_vazirani_circuit",
           "DeutschJozsaInstance", "deutsch_jozsa_circuit"]


@dataclass
class BernsteinVaziraniInstance:
    """BV benchmark: the circuit plus the secret it must reveal."""

    circuit: QuantumCircuit
    num_data_qubits: int
    secret: int

    @property
    def name(self) -> str:
        return self.circuit.name

    def expected_outcome(self, measured_index: int) -> bool:
        """Whether a full-register measurement reveals the secret."""
        data = measured_index & ((1 << self.num_data_qubits) - 1)
        return data == self.secret


def bernstein_vazirani_circuit(num_data_qubits: int,
                               secret: int) -> BernsteinVaziraniInstance:
    """One-query recovery of ``secret`` from the oracle ``f(x) = s.x``.

    The oracle is the textbook phase-kickback construction: a CX from every
    data qubit where the secret has a 1 onto the ``|->`` ancilla.
    """
    if num_data_qubits < 1:
        raise ValueError("need at least one data qubit")
    if not 0 <= secret < 1 << num_data_qubits:
        raise ValueError(f"secret {secret} out of range")
    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_data_qubits + 1,
                             name=f"bv_{num_data_qubits}")
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    for qubit in range(num_data_qubits):
        if (secret >> qubit) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    return BernsteinVaziraniInstance(circuit=circuit,
                                     num_data_qubits=num_data_qubits,
                                     secret=secret)


@dataclass
class DeutschJozsaInstance:
    """DJ benchmark: circuit plus whether the oracle was constant."""

    circuit: QuantumCircuit
    num_data_qubits: int
    constant: bool

    @property
    def name(self) -> str:
        return self.circuit.name

    def is_constant_outcome(self, measured_index: int) -> bool:
        """DJ decides 'constant' iff the data register reads all zeros."""
        data = measured_index & ((1 << self.num_data_qubits) - 1)
        return data == 0


def deutsch_jozsa_circuit(num_data_qubits: int, constant: bool,
                          balanced_mask: int | None = None) -> DeutschJozsaInstance:
    """Decide constant-vs-balanced with one oracle query.

    For the balanced case the oracle is ``f(x) = parity(x & mask)`` for a
    non-zero ``balanced_mask`` (default: all ones); for the constant case
    ``f(x) = 0`` (an empty oracle).
    """
    if num_data_qubits < 1:
        raise ValueError("need at least one data qubit")
    ancilla = num_data_qubits
    circuit = QuantumCircuit(num_data_qubits + 1,
                             name=f"dj_{num_data_qubits}")
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    if not constant:
        mask = balanced_mask if balanced_mask is not None \
            else (1 << num_data_qubits) - 1
        if not 0 < mask < 1 << num_data_qubits:
            raise ValueError("balanced oracle needs a non-zero mask in range")
        for qubit in range(num_data_qubits):
            if (mask >> qubit) & 1:
                circuit.cx(qubit, ancilla)
    for qubit in range(num_data_qubits):
        circuit.h(qubit)
    return DeutschJozsaInstance(circuit=circuit,
                                num_data_qubits=num_data_qubits,
                                constant=constant)
