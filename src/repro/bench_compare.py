"""Benchmark-report regression comparison (``python -m repro bench --compare``).

Compares two benchmark reports produced by :mod:`repro.bench` and flags
per-workload wall-clock regressions beyond a threshold.  This is the
mechanical half of the "receipt" workflow: a checked-in baseline report
plus one command answers "did this change slow anything down?" without
eyeballing JSON.

Only wall-clock numbers are compared -- counters and cache rates are
machine-independent and change exactly when the kernel changes, so they
belong to diff review, not regression gating.  Comparison is by workload
name and arm; arms or workloads missing from either report are reported
as informational skips, not failures.

Reports must match this tree's schema exactly: a missing or stale
baseline fails loudly (naming the file and both schema versions) instead
of silently gating nothing, so CI cannot go green on a comparison that
never happened.  Regenerate with ``python -m repro bench --smoke
--output benchmarks/baseline_smoke.json``.
"""

from __future__ import annotations

import json

__all__ = ["ARMS", "compare_reports", "format_comparison", "load_report"]

#: report arms carrying a comparable ``wall_seconds_best``
ARMS = ("fast_path", "matrix_path", "iterative_path")


def load_report(path: str) -> dict:
    """Load one bench report, validating shape and schema version.

    Every failure mode raises :class:`ValueError` naming the offending
    file, and a schema mismatch names both versions -- a comparison
    against a baseline this tree cannot interpret must fail, not shrug.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except FileNotFoundError:
        raise ValueError(
            f"bench report {path!r} does not exist; generate it with "
            f"'python -m repro bench --smoke --output {path}'") from None
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"bench report {path!r} is not valid JSON: {exc}") from None
    if "workloads" not in report:
        raise ValueError(f"{path}: not a bench report (no 'workloads' key)")
    from .bench import SCHEMA_VERSION
    found = report.get("schema")
    if found != SCHEMA_VERSION:
        relation = ("an older" if isinstance(found, int)
                    and found < SCHEMA_VERSION else "a different")
        raise ValueError(
            f"bench report {path!r} has schema version {found!r} but this "
            f"tree writes schema version {SCHEMA_VERSION} ({relation} "
            f"schema); regenerate it with "
            f"'python -m repro bench --smoke --output {path}'")
    return report


def compare_reports(baseline: dict, current: dict,
                    threshold_pct: float = 25.0) -> dict:
    """Compare ``current`` against ``baseline``; returns a result dict.

    A workload/arm pair *regresses* when its ``wall_seconds_best`` exceeds
    the baseline's by more than ``threshold_pct`` percent.  The result
    carries ``regressions`` (list of violation dicts -- empty means pass),
    ``improvements`` (informational), and ``skipped`` (pairs present in
    only one report).
    """
    if threshold_pct < 0:
        raise ValueError(f"threshold_pct must be >= 0, got {threshold_pct}")
    base_by_name = {w["name"]: w for w in baseline.get("workloads", [])}
    regressions: list[dict] = []
    improvements: list[dict] = []
    skipped: list[str] = []
    for workload in current.get("workloads", []):
        name = workload["name"]
        base = base_by_name.get(name)
        if base is None:
            skipped.append(f"{name}: not in baseline")
            continue
        for arm in ARMS:
            cur_arm = workload.get(arm)
            base_arm = base.get(arm)
            if cur_arm is None or base_arm is None:
                if cur_arm is not None or base_arm is not None:
                    skipped.append(f"{name}/{arm}: only in "
                                   + ("current" if base_arm is None
                                      else "baseline"))
                continue
            base_wall = base_arm["wall_seconds_best"]
            cur_wall = cur_arm["wall_seconds_best"]
            if not base_wall:
                skipped.append(f"{name}/{arm}: baseline wall-clock is zero")
                continue
            delta_pct = (cur_wall - base_wall) / base_wall * 100.0
            record = {
                "workload": name,
                "arm": arm,
                "baseline_seconds": base_wall,
                "current_seconds": cur_wall,
                "delta_pct": round(delta_pct, 2),
            }
            if delta_pct > threshold_pct:
                regressions.append(record)
            elif delta_pct < 0:
                improvements.append(record)
    for name in base_by_name:
        if name not in {w["name"] for w in current.get("workloads", [])}:
            skipped.append(f"{name}: not in current report")
    return {
        "threshold_pct": threshold_pct,
        "regressions": regressions,
        "improvements": improvements,
        "skipped": skipped,
        "passed": not regressions,
    }


def format_comparison(result: dict) -> str:
    """Human-readable summary of a :func:`compare_reports` result."""
    lines: list[str] = []
    threshold = result["threshold_pct"]
    for record in result["regressions"]:
        lines.append(
            f"REGRESSION {record['workload']}/{record['arm']}: "
            f"{record['baseline_seconds']:.4f}s -> "
            f"{record['current_seconds']:.4f}s "
            f"(+{record['delta_pct']:.1f}% > {threshold:g}%)")
    for record in result["improvements"]:
        lines.append(
            f"improved   {record['workload']}/{record['arm']}: "
            f"{record['baseline_seconds']:.4f}s -> "
            f"{record['current_seconds']:.4f}s "
            f"({record['delta_pct']:.1f}%)")
    for note in result["skipped"]:
        lines.append(f"skipped    {note}")
    lines.append("PASS: no wall-clock regression beyond "
                 f"{threshold:g}%" if result["passed"] else
                 f"FAIL: {len(result['regressions'])} regression(s) beyond "
                 f"{threshold:g}%")
    return "\n".join(lines)
