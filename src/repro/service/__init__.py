"""Durable job queue, supervised worker pool, and fault injection.

The service layer turns the engine's resilience primitives (atomic
checkpoints, memory budgets, worker-death containment) into *jobs that
survive*: a file-backed job store whose records move through a validated
state machine with atomic writes, a supervisor that leases jobs to worker
processes with heartbeats/lease expiry/retry-with-backoff, and one shared
deterministic fault-injection vocabulary used by the chaos test suite and
the sweep runner alike.

Public surface:

* :mod:`repro.service.jobs` -- :class:`JobSpec`, :class:`JobRecord`,
  :class:`JobStore`, :class:`JobStateError`.
* :mod:`repro.service.supervisor` -- :class:`Supervisor`,
  :class:`SupervisorConfig`, :class:`SupervisorReport`.
* :mod:`repro.service.faults` -- :func:`parse_fault`,
  :class:`FaultInjector`, :class:`Deadline`, :class:`InjectedBudgetFault`.
"""

from .faults import (Deadline, Fault, FaultInjector, InjectedBudgetFault,
                     chain_hooks, parse_fault)
from .jobs import (JOB_STATES, JobRecord, JobSpec, JobStateError, JobStore,
                   TERMINAL_STATES)
from .supervisor import Supervisor, SupervisorConfig, SupervisorReport

__all__ = [
    "Deadline",
    "Fault",
    "FaultInjector",
    "InjectedBudgetFault",
    "chain_hooks",
    "parse_fault",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "JobStateError",
    "JobStore",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorReport",
]
