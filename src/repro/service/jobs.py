"""Durable, file-backed job store with a validated state machine.

A *job* is one simulation the user wants to complete eventually: a circuit
(inline OpenQASM-2 text), a strategy/kernel/reorder specification, memory
and time budgets, and a checkpoint slot.  Jobs survive the death of any
process involved -- worker, supervisor, or the whole machine -- because
every job lives in exactly one JSON file written **atomically** (payload to
``<path>.tmp``, flush + fsync, then :func:`os.replace` over the real name).
A kill at any instruction boundary leaves either the previous complete
record or the new complete record on disk, never a truncated one.

State machine (validated on every transition; ``JobStateError`` on an
illegal edge)::

    queued --> leased --> running --> done
       ^          |          |
       |<---------+----------+------> quarantined
       |   (lease expired /  |
       |    worker failed,   +------> failed
       |    retry scheduled)

* ``queued``      -- waiting for a worker slot (``not_before`` gates
                     retry backoff).
* ``leased``      -- a supervisor claimed the job for a specific attempt
                     but the worker has not been observed running yet.
* ``running``     -- a worker process owns the job and proves liveness by
                     touching its heartbeat file.
* ``done``        -- a result file exists (linked exclusively, so a job
                     can complete at most once).
* ``failed``      -- terminally failed for a reason retrying cannot fix
                     (e.g. an invalid spec).
* ``quarantined`` -- retries exhausted; the record carries the full error
                     chain, one entry per attempt.

``failed`` and ``quarantined`` jobs can be re-queued explicitly
(``repro jobs retry``); that is the only edge out of a terminal state.

Write ownership is split to avoid file races: the **supervisor** is the
only writer of job records; **workers** write only into their per-job work
directory (heartbeat, checkpoint, result, error files).  The result file
is created with :func:`os.link` from a private temporary file -- link
fails with ``FileExistsError`` if a result already exists, which is what
makes "executed twice to completion" impossible even under lease-expiry
races.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

__all__ = ["JOB_STATES", "TERMINAL_STATES", "JobSpec", "JobRecord",
           "JobStateError", "JobStore"]

#: every state a job record can be in, in lifecycle order
JOB_STATES = ("queued", "leased", "running", "done", "failed", "quarantined")

#: states with no automatic outgoing edge (only an explicit retry re-queues)
TERMINAL_STATES = ("done", "failed", "quarantined")

#: the validated edges of the state machine
_TRANSITIONS: dict[str, frozenset[str]] = {
    "queued": frozenset({"leased", "failed", "quarantined"}),
    "leased": frozenset({"running", "queued", "failed", "quarantined"}),
    "running": frozenset({"done", "queued", "failed", "quarantined"}),
    # terminal states: only the explicit retry edge back to queued
    "done": frozenset(),
    "failed": frozenset({"queued"}),
    "quarantined": frozenset({"queued"}),
}


class JobStateError(ValueError):
    """An illegal state-machine transition (or malformed job record)."""


@dataclass(frozen=True)
class JobSpec:
    """What to simulate and under which budgets (plain data, JSON-safe)."""

    #: human-readable job name (also the basis of the job id slug)
    name: str
    #: the circuit as inline OpenQASM-2 text (never a path -- the record
    #: is self-contained and workers never race on external files)
    qasm: str
    #: strategy spec string (:func:`~repro.simulation.strategies.strategy_from_spec`)
    strategy: str = "sequential"
    use_local_apply: bool = True
    #: DD kernel (``"recursive"`` / ``"iterative"``); ``None`` = default
    kernel: str | None = None
    #: reorder policy spec (``"governor"`` / ``"every=K"``), or ``None``
    reorder: str | None = None
    #: hard node budget (MemoryBudgetExceeded beyond this), or ``None``
    max_nodes: int | None = None
    #: GC trigger threshold; ``None`` = governor default
    gc_limit: int | None = None
    #: periodic checkpoint cadence in elementary operations
    checkpoint_every: int = 25
    #: per-attempt cooperative wall-clock deadline in seconds, or ``None``
    timeout: float | None = None
    #: fault-injection spec (:func:`repro.service.faults.parse_fault`);
    #: chaos testing only, ``None`` in production
    fault: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Any, source: str = "job spec") -> "JobSpec":
        if not isinstance(payload, dict):
            raise JobStateError(f"{source}: spec must be a dict, "
                                f"got {type(payload).__name__}")
        for key in ("name", "qasm"):
            if not isinstance(payload.get(key), str) or not payload[key]:
                raise JobStateError(
                    f"{source}: spec field {key!r} must be a "
                    f"non-empty string")
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in payload.items()
                      if key in known})


@dataclass
class JobRecord:
    """One job's durable state: spec + state machine + attempt history."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    #: completed (consumed) execution attempts so far
    attempts: int = 0
    #: attempts after which the job is quarantined instead of re-queued
    max_attempts: int = 3
    #: epoch seconds before which the job must not be leased (retry backoff)
    not_before: float = 0.0
    #: active lease (``attempt``, ``pid``, ``acquired_at``,
    #: ``lease_seconds``), or ``None`` outside leased/running
    lease: dict | None = None
    #: one error record per failed attempt -- the full error chain
    errors: list = field(default_factory=list)
    #: summary of the successful attempt (stamped on ``done``)
    result: dict | None = None
    #: every transition taken: ``{"time", "from", "to", "note"}``
    history: list = field(default_factory=list)
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, to_state: str, note: str = "") -> None:
        """Move to ``to_state``, validating the edge; records history."""
        if to_state not in JOB_STATES:
            raise JobStateError(f"job {self.job_id}: unknown state "
                                f"{to_state!r} (expected one of {JOB_STATES})")
        if to_state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {to_state!r}")
        self.history.append({"time": time.time(), "from": self.state,
                             "to": to_state, "note": note})
        self.state = to_state
        if to_state not in ("leased", "running"):
            self.lease = None

    def as_dict(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["spec"] = self.spec.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Any, source: str = "job record"
                  ) -> "JobRecord":
        """Validate and rebuild a record from parsed JSON.

        Raises :class:`JobStateError` naming the offending field; never a
        bare ``KeyError``/``TypeError`` from an edited or foreign file.
        """
        if not isinstance(payload, dict):
            raise JobStateError(f"{source}: record must be a dict, "
                                f"got {type(payload).__name__}")
        job_id = payload.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise JobStateError(f"{source}: missing/invalid 'job_id'")
        state = payload.get("state")
        if state not in JOB_STATES:
            raise JobStateError(f"{source}: invalid state {state!r} "
                                f"(expected one of {JOB_STATES})")
        spec = JobSpec.from_dict(payload.get("spec"), source=source)
        record = cls(job_id=job_id, spec=spec, state=state)
        for key in ("attempts", "max_attempts"):
            value = payload.get(key, getattr(record, key))
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                raise JobStateError(f"{source}: field {key!r} must be a "
                                    f"non-negative int, got {value!r}")
            setattr(record, key, value)
        record.not_before = float(payload.get("not_before", 0.0))
        record.lease = payload.get("lease")
        if record.lease is not None and not isinstance(record.lease, dict):
            raise JobStateError(f"{source}: field 'lease' must be a dict "
                                f"or null")
        record.errors = list(payload.get("errors") or [])
        record.result = payload.get("result")
        record.history = list(payload.get("history") or [])
        record.created_at = float(payload.get("created_at", 0.0))
        record.updated_at = float(payload.get("updated_at", 0.0))
        return record


def _write_atomic(path: str, payload: dict) -> None:
    """tmp + fsync + rename: a kill at any point leaves a complete file."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


class JobStore:
    """File-backed job store rooted at one directory.

    Layout::

        <root>/jobs/<job_id>.json     one record per job (atomic writes)
        <root>/work/<job_id>/         worker-owned files per job:
            heartbeat                 liveness proof (mtime = last op)
            checkpoint.json           engine checkpoint (resume point)
            result.json               created exclusively via os.link
            error-<attempt>.json      one error record per failed attempt
        <root>/completions.log        append-only completion ledger

    The store itself is process-agnostic: any process (submitter,
    supervisor, worker, status CLI) can open the same root.  Only the
    conventions above keep writers from racing -- see the module docstring.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.work_root = os.path.join(self.root, "work")
        self.completions_path = os.path.join(self.root, "completions.log")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.work_root, exist_ok=True)

    # -- record I/O -----------------------------------------------------

    def job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def submit(self, spec: JobSpec, max_attempts: int = 3) -> JobRecord:
        """Durably enqueue a new job; returns the created record."""
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        slug = re.sub(r"[^A-Za-z0-9_-]+", "-", spec.name).strip("-") or "job"
        existing = self.list_ids()
        sequence = len(existing)
        while True:
            job_id = f"j{sequence:04d}-{slug}"
            path = self.job_path(job_id)
            try:
                # exclusive create reserves the id even if two submitters
                # race on the same store
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                sequence += 1
                continue
            os.close(fd)
            break
        record = JobRecord(job_id=job_id, spec=spec,
                           max_attempts=max_attempts)
        record.history.append({"time": record.created_at, "from": None,
                               "to": "queued", "note": "submitted"})
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        record.updated_at = time.time()
        _write_atomic(self.job_path(record.job_id), record.as_dict())

    def get(self, job_id: str) -> JobRecord:
        path = self.job_path(job_id)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise KeyError(f"no such job {job_id!r} in {self.root}") \
                from None
        except json.JSONDecodeError as exc:
            raise JobStateError(
                f"{path}: not a valid job record (corrupt JSON at byte "
                f"{exc.pos}: {exc.msg})") from None
        return JobRecord.from_dict(payload, source=path)

    def list_ids(self) -> list[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except FileNotFoundError:
            return []
        return sorted(name[:-5] for name in names
                      if name.endswith(".json"))

    def load_all(self) -> list[JobRecord]:
        records = []
        for job_id in self.list_ids():
            try:
                records.append(self.get(job_id))
            except JobStateError:
                # a freshly reserved id whose first save has not landed
                # yet parses as empty; skip rather than poison a listing
                continue
        return records

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for record in self.load_all():
            counts[record.state] += 1
        return {state: n for state, n in counts.items() if n}

    def transition(self, record: JobRecord, to_state: str,
                   note: str = "") -> JobRecord:
        """Validated transition + durable save, in one step."""
        record.transition(to_state, note)
        self.save(record)
        return record

    # -- per-job work files (worker-owned) ------------------------------

    def work_dir(self, job_id: str, create: bool = False) -> str:
        path = os.path.join(self.work_root, job_id)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def heartbeat_path(self, job_id: str) -> str:
        return os.path.join(self.work_dir(job_id), "heartbeat")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.work_dir(job_id), "checkpoint.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.work_dir(job_id), "result.json")

    def error_path(self, job_id: str, attempt: int) -> str:
        return os.path.join(self.work_dir(job_id), f"error-{attempt}.json")

    def write_error(self, job_id: str, attempt: int, error: dict) -> None:
        self.work_dir(job_id, create=True)
        _write_atomic(self.error_path(job_id, attempt), error)

    def read_error(self, job_id: str, attempt: int) -> dict | None:
        try:
            with open(self.error_path(job_id, attempt),
                      encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def publish_result(self, job_id: str, payload: dict) -> bool:
        """Atomically publish a result, **at most once** per job.

        The payload goes to a private temporary file which is then
        :func:`os.link`-ed to ``result.json``.  Hard-linking fails with
        ``FileExistsError`` when a result already exists, so two workers
        racing on the same job (a lease-expiry kill that lost the race,
        a supervisor restart) can never both complete it: the loser gets
        ``False`` and must discard its result.
        """
        self.work_dir(job_id, create=True)
        final = self.result_path(job_id)
        tmp = f"{final}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, final)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        self.record_completion(job_id)
        return True

    def read_result(self, job_id: str) -> dict | None:
        try:
            with open(self.result_path(job_id), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # -- completion ledger ----------------------------------------------

    def record_completion(self, job_id: str) -> None:
        """Append to the completion ledger (idempotent per job)."""
        if job_id in self.completions():
            return
        with open(self.completions_path, "a", encoding="utf-8") as handle:
            handle.write(f"{job_id}\t{time.time():.6f}\n")
            handle.flush()
            os.fsync(handle.fileno())

    def completions(self) -> set[str]:
        try:
            with open(self.completions_path, encoding="utf-8") as handle:
                return {line.split("\t", 1)[0]
                        for line in handle if line.strip()}
        except FileNotFoundError:
            return set()

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.load_all())
