"""Supervised worker pool over a :class:`~repro.service.jobs.JobStore`.

One supervisor process drives a batch of durable jobs to completion:

* **Leases with heartbeats.**  A claimed job gets a lease for a specific
  attempt; the worker proves liveness by touching its heartbeat file at
  every operation boundary.  A heartbeat older than ``lease_seconds``
  means the worker is dead, wedged, or pathologically slow -- the
  supervisor kills it and the job goes back to the queue.  Progress is
  not lost: the worker checkpointed as it went, and the retry resumes.

* **Retry with exponential backoff + deterministic jitter.**  A failed
  attempt re-queues the job with ``not_before = now + base * factor**(n-1)
  + jitter``, where the jitter derives from SHA-256 of ``(job_id,
  attempt)`` -- retry schedules are reproducible run-to-run, yet spread
  out across jobs.

* **Resume from the latest checkpoint.**  Workers write periodic
  checkpoints (and on-failure checkpoints for budget aborts); a retry
  loads the newest one and continues via
  :meth:`~repro.simulation.engine.SimulationEngine.resume`, replaying at
  most ``checkpoint_every - 1`` operations.  An unreadable checkpoint
  (:class:`~repro.simulation.checkpoint.CheckpointError`) is quarantined
  to ``checkpoint.json.bad`` and the attempt restarts from operation 0 --
  damaged state never poisons the job.

* **Quarantine after ``max_attempts``.**  The record keeps the full error
  chain (one entry per attempt) for post-mortems.

* **Exactly-once completion, at-least-once execution.**  Results publish
  through :meth:`JobStore.publish_result`'s exclusive hard-link; a worker
  that lost a completion race exits with :data:`EXIT_ALREADY_DONE` and
  the supervisor adopts the existing result.  On startup the supervisor
  *recovers* the store: jobs stuck in ``leased``/``running`` by a killed
  predecessor are adopted (result exists), re-queued (owner dead), or
  have their orphan worker killed and are re-queued -- so ``repro jobs
  run`` on a crashed store always completes the batch.

Supervision happens over *files only* (job records, heartbeats, results,
errors); no pipes or queues connect supervisor and worker, which is what
makes a ``kill -9`` of either side recoverable by construction.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
import traceback
from collections.abc import Callable
from dataclasses import asdict, dataclass, field

from .faults import Deadline, FaultInjector, chain_hooks, parse_fault
from .jobs import JobRecord, JobStore

__all__ = ["EXIT_ALREADY_DONE", "JobTimeout", "Supervisor",
           "SupervisorConfig", "SupervisorReport", "run_job_attempt"]

#: worker exit status: the job's result already existed (lost a completion
#: race, or a previous attempt finished after its lease was reclaimed)
EXIT_ALREADY_DONE = 3

#: amplitude payloads are only useful for fidelity checks on small states;
#: beyond this register size the result carries statistics only
_AMPLITUDE_QUBIT_LIMIT = 12


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its cooperative deadline."""


# ----------------------------------------------------------------------
# worker side (runs in a disposable forked process)
# ----------------------------------------------------------------------

def run_job_attempt(store: JobStore, job_id: str, attempt: int) -> int:
    """Execute one attempt of one job; returns the worker exit status.

    Everything here is file-based: progress goes to the heartbeat and
    checkpoint files, the outcome to the result file (exclusive link) or
    an ``error-<attempt>.json``.  The function never touches the job
    record -- that is the supervisor's to write.
    """
    from ..circuit.qasm import from_qasm
    from ..dd.package import Package
    from ..simulation.checkpoint import CheckpointError, load_checkpoint
    from ..simulation.engine import SimulationEngine
    from ..simulation.memory import MemoryGovernor
    from ..simulation.strategies import strategy_from_spec

    record = store.get(job_id)
    spec = record.spec
    store.work_dir(job_id, create=True)
    heartbeat = store.heartbeat_path(job_id)
    _touch(heartbeat)
    checkpoint_file = store.checkpoint_path(job_id)

    injector = FaultInjector(parse_fault(spec.fault), in_worker=True,
                             attempt=attempt, label=f"job {job_id}",
                             checkpoint_path=checkpoint_file)
    try:
        injector.at_start()
        circuit = from_qasm(spec.qasm)
        package_kwargs = {}
        if spec.kernel is not None:
            package_kwargs["kernel"] = spec.kernel
        if not spec.use_local_apply:
            package_kwargs["identity_shortcut"] = False
        package = Package(**package_kwargs) if package_kwargs else None
        governor = None
        if spec.max_nodes is not None or spec.gc_limit is not None:
            governor = MemoryGovernor(node_limit=spec.gc_limit or 500_000,
                                      max_nodes=spec.max_nodes)
        engine = SimulationEngine(package=package,
                                  use_local_apply=spec.use_local_apply,
                                  governor=governor)
        # heartbeat first: a latency fault's sleep then runs *after* the
        # touch, so the heartbeat goes stale mid-sleep and the lease
        # expires -- exactly the slow-worker scenario being modelled
        on_op = chain_hooks(
            lambda _op: _touch(heartbeat),
            injector.on_op if injector.wants_op_hook else None,
            Deadline(spec.timeout, JobTimeout, f"job {job_id}")
            if spec.timeout is not None else None,
        )
        checkpoint = None
        if os.path.exists(checkpoint_file):
            try:
                checkpoint = load_checkpoint(checkpoint_file)
            except CheckpointError as exc:
                # damaged checkpoint: set it aside and restart from op 0
                # rather than failing every retry on the same bad file
                os.replace(checkpoint_file, f"{checkpoint_file}.bad")
                store.write_error(job_id, attempt, {
                    "attempt": attempt, "type": "CheckpointError",
                    "message": f"{exc} -- restarting from operation 0",
                    "recovered": True})
                checkpoint = None
        common = dict(checkpoint_path=checkpoint_file,
                      checkpoint_every=spec.checkpoint_every,
                      reorder=spec.reorder, on_op=on_op)
        if checkpoint is not None:
            result = engine.resume(checkpoint, circuit, **common)
        else:
            result = engine.simulate(circuit,
                                     strategy_from_spec(spec.strategy),
                                     **common)
    except Exception as exc:
        store.write_error(job_id, attempt, {
            "attempt": attempt,
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        })
        return 1

    statistics = result.statistics
    statistics.attempts = attempt
    payload = {
        "job_id": job_id,
        "attempt": attempt,
        "resumed_from_op": statistics.resumed_from_op,
        "statistics": statistics.as_dict(),
    }
    if circuit.num_qubits <= _AMPLITUDE_QUBIT_LIMIT:
        payload["amplitudes"] = [
            [amplitude.real, amplitude.imag]
            for amplitude in (result.amplitude(index)
                              for index in range(2 ** circuit.num_qubits))]
    if not store.publish_result(job_id, payload):
        return EXIT_ALREADY_DONE
    return 0


def _worker_entry(store_root: str, job_id: str, attempt: int) -> None:
    """Process target: run one attempt, exit with its status."""
    status = run_job_attempt(JobStore(store_root), job_id, attempt)
    os._exit(status)


def _touch(path: str) -> None:
    try:
        os.utime(path)
    except FileNotFoundError:
        with open(path, "a", encoding="utf-8"):
            pass


def _pid_alive(pid: int | None) -> bool:
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------

@dataclass
class SupervisorConfig:
    """Knobs of one supervision run (defaults suit interactive batches)."""

    #: concurrent worker processes
    max_workers: int = 2
    #: heartbeat staleness beyond which a lease is expired and the worker
    #: killed; must exceed the longest single-operation gap of the workload
    lease_seconds: float = 10.0
    #: supervisor poll cadence
    poll_interval: float = 0.05
    #: retry backoff: ``base * factor**(attempt-1)``, capped at ``maximum``
    backoff_base: float = 0.2
    backoff_factor: float = 2.0
    backoff_max: float = 10.0
    #: deterministic jitter amplitude added to every backoff
    jitter_seconds: float = 0.1
    #: hard wall-clock bound on one ``run()`` call -- the supervisor never
    #: hangs forever even if every safeguard below it fails
    max_wall_seconds: float = 600.0


@dataclass
class SupervisorReport:
    """Outcome of one supervision run."""

    #: final state per supervised job id
    states: dict = field(default_factory=dict)
    retries: int = 0
    lease_expiries: int = 0
    recovered: int = 0
    wall_seconds: float = 0.0

    @property
    def all_done(self) -> bool:
        return bool(self.states) and \
            all(state == "done" for state in self.states.values())

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for state in self.states.values():
            counts[state] = counts.get(state, 0) + 1
        return counts

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["counts"] = self.counts()
        payload["all_done"] = self.all_done
        return payload


@dataclass
class _Worker:
    process: multiprocessing.process.BaseProcess
    attempt: int
    started_at: float


class Supervisor:
    """Drive every queued job in a store to a terminal state.

    ``trace``, when given, receives one dict per supervision event --
    ``job`` (state changes), ``lease`` (acquired / expired / reclaimed),
    ``retry`` (backoff scheduling), ``quarantine`` (retries exhausted) --
    in the JSONL schema of :mod:`repro.simulation.trace`, so a
    :class:`~repro.simulation.trace.JsonlTraceSink` streams the whole
    supervision history to disk next to the engine's own events.
    """

    def __init__(self, store: JobStore,
                 config: SupervisorConfig | None = None,
                 trace: Callable[[dict], object] | None = None) -> None:
        self.store = store
        self.config = config or SupervisorConfig()
        self.trace = trace
        self._mp = multiprocessing.get_context("fork") \
            if "fork" in multiprocessing.get_all_start_methods() \
            else multiprocessing.get_context()

    # -- public API -----------------------------------------------------

    def run(self, job_ids: list[str] | None = None) -> SupervisorReport:
        """Supervise until every job is terminal; returns the report."""
        config = self.config
        started = time.monotonic()
        report = SupervisorReport()
        ids = list(job_ids) if job_ids is not None else self.store.list_ids()
        self._recover(ids, report)
        active: dict[str, _Worker] = {}
        try:
            while True:
                now = time.monotonic()
                if now - started > config.max_wall_seconds:
                    self._abandon(active, report)
                    break
                self._reap_finished(active, report)
                self._expire_leases(active, report)
                pending = self._launch_ready(ids, active)
                if not active:
                    if pending is None:
                        break  # every job terminal
                    # nothing running, nothing ready: sleep out the backoff
                    time.sleep(min(max(pending - time.time(), 0.0) + 0.01,
                                   1.0))
                    continue
                time.sleep(config.poll_interval)
        finally:
            for worker in active.values():
                if worker.process.is_alive():
                    worker.process.kill()
                worker.process.join()
        for job_id in ids:
            report.states[job_id] = self.store.get(job_id).state
        report.wall_seconds = time.monotonic() - started
        return report

    # -- recovery (crashed predecessor) ---------------------------------

    def _recover(self, ids: list[str], report: SupervisorReport) -> None:
        """Repair leased/running records left behind by a dead supervisor."""
        for job_id in ids:
            record = self.store.get(job_id)
            if record.state not in ("leased", "running"):
                continue
            result = self.store.read_result(job_id)
            if result is not None:
                # the worker finished; only the bookkeeping was lost
                self._adopt_result(record, result,
                                   note="adopted after supervisor restart")
                report.recovered += 1
                continue
            pid = (record.lease or {}).get("pid")
            if _pid_alive(pid):
                # an orphan worker without a supervisor cannot have its
                # lease renewed or its result adopted race-free: kill it
                # (its checkpoints keep the progress) and re-queue
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
            record.not_before = 0.0
            self.store.transition(record, "queued",
                                  note="lease reclaimed (supervisor lost)")
            self._emit("lease", job=job_id, action="reclaimed", pid=pid)
            report.recovered += 1

    # -- scheduling -----------------------------------------------------

    def _launch_ready(self, ids: list[str],
                      active: dict[str, _Worker]) -> float | None:
        """Start workers for due queued jobs.

        Returns ``None`` when every job is terminal, otherwise the
        earliest ``not_before`` among still-pending jobs (for sleeping).
        """
        earliest: float | None = None
        all_terminal = True
        now = time.time()
        for job_id in ids:
            if job_id in active:
                all_terminal = False
                continue
            record = self.store.get(job_id)
            if record.terminal:
                continue
            all_terminal = False
            if record.state != "queued":
                continue
            if record.not_before > now:
                if earliest is None or record.not_before < earliest:
                    earliest = record.not_before
                continue
            if len(active) >= self.config.max_workers:
                earliest = earliest if earliest is not None else now
                continue
            self._launch(record, active)
        if all_terminal and not active:
            return None
        return earliest if earliest is not None else now

    def _launch(self, record: JobRecord, active: dict[str, _Worker]) -> None:
        attempt = record.attempts + 1
        record.lease = {"attempt": attempt, "pid": None,
                        "acquired_at": time.time(),
                        "lease_seconds": self.config.lease_seconds}
        self.store.transition(record, "leased", note=f"attempt {attempt}")
        self.store.work_dir(record.job_id, create=True)
        # start the staleness clock now -- a worker that never gets to its
        # first heartbeat (hang fault, import crash) still expires
        _touch(self.store.heartbeat_path(record.job_id))
        process = self._mp.Process(
            target=_worker_entry,
            args=(self.store.root, record.job_id, attempt))
        process.start()
        record.lease["pid"] = process.pid
        self.store.transition(record, "running", note=f"pid {process.pid}")
        active[record.job_id] = _Worker(process=process, attempt=attempt,
                                        started_at=time.monotonic())
        self._emit("lease", job=record.job_id, action="acquired",
                   attempt=attempt, pid=process.pid,
                   lease_seconds=self.config.lease_seconds)
        self._emit("job", job=record.job_id, action="running",
                   attempt=attempt)

    # -- monitoring -----------------------------------------------------

    def _reap_finished(self, active: dict[str, _Worker],
                       report: SupervisorReport) -> None:
        for job_id, worker in list(active.items()):
            process = worker.process
            if process.is_alive():
                continue
            process.join()
            del active[job_id]
            record = self.store.get(job_id)
            result = self.store.read_result(job_id)
            if result is not None:
                # covers exit 0 and EXIT_ALREADY_DONE alike: a result on
                # disk is the one source of truth for completion
                self._adopt_result(record, result)
                continue
            error = self.store.read_error(job_id, worker.attempt)
            if error is None or error.get("recovered"):
                error = {"attempt": worker.attempt, "type": "WorkerDied",
                         "message": f"worker pid {process.pid} exited with "
                                    f"code {process.exitcode} without a "
                                    f"result"}
            self._record_failure(record, worker.attempt, error, report)

    def _expire_leases(self, active: dict[str, _Worker],
                       report: SupervisorReport) -> None:
        lease_seconds = self.config.lease_seconds
        for job_id, worker in list(active.items()):
            if not worker.process.is_alive():
                continue  # _reap_finished picks it up next tick
            heartbeat = self.store.heartbeat_path(job_id)
            try:
                age = time.time() - os.path.getmtime(heartbeat)
            except OSError:
                age = time.monotonic() - worker.started_at
            if age <= lease_seconds:
                continue
            worker.process.kill()
            worker.process.join()
            del active[job_id]
            report.lease_expiries += 1
            self._emit("lease", job=job_id, action="expired",
                       attempt=worker.attempt, heartbeat_age=round(age, 3),
                       lease_seconds=lease_seconds)
            record = self.store.get(job_id)
            # the worker may have published a result between our staleness
            # read and the kill; a result always wins (exactly-once holds:
            # it was linked exclusively)
            result = self.store.read_result(job_id)
            if result is not None:
                self._adopt_result(record, result)
                continue
            error = {"attempt": worker.attempt, "type": "LeaseExpired",
                     "message": f"heartbeat stale for {age:.3f}s "
                                f"(lease {lease_seconds}s); worker killed"}
            self._record_failure(record, worker.attempt, error, report)

    # -- outcome bookkeeping --------------------------------------------

    def _adopt_result(self, record: JobRecord, result: dict,
                      note: str = "") -> None:
        record.attempts = max(record.attempts,
                              int(result.get("attempt", 1)))
        record.result = {
            "attempt": result.get("attempt"),
            "resumed_from_op": result.get("resumed_from_op"),
        }
        statistics = result.get("statistics") or {}
        for key in ("operations_applied", "cumulative_fidelity",
                    "wall_time_seconds", "checkpoints_written"):
            if key in statistics:
                record.result[key] = statistics[key]
        self.store.transition(record, "done", note=note or "result adopted")
        self.store.record_completion(record.job_id)
        self._emit("job", job=record.job_id, action="done",
                   attempt=record.attempts,
                   resumed_from_op=record.result.get("resumed_from_op"))

    def _record_failure(self, record: JobRecord, attempt: int, error: dict,
                        report: SupervisorReport) -> None:
        record.attempts = max(record.attempts, attempt)
        record.errors.append(dict(error, attempt=attempt))
        if record.attempts >= record.max_attempts:
            self.store.transition(
                record, "quarantined",
                note=f"retries exhausted after attempt {attempt}")
            self._emit("quarantine", job=record.job_id,
                       attempts=record.attempts,
                       errors=[e.get("type") for e in record.errors])
            return
        delay = min(self.config.backoff_max,
                    self.config.backoff_base
                    * self.config.backoff_factor ** (attempt - 1))
        delay += self._jitter(record.job_id, attempt)
        record.not_before = time.time() + delay
        self.store.transition(
            record, "queued",
            note=f"retry after attempt {attempt} "
                 f"({error.get('type')}; backoff {delay:.3f}s)")
        report.retries += 1
        self._emit("retry", job=record.job_id, attempt=attempt,
                   error=error.get("type"), backoff_seconds=round(delay, 3),
                   next_attempt=record.attempts + 1)

    def _abandon(self, active: dict[str, _Worker],
                 report: SupervisorReport) -> None:
        """Wall-clock bound hit: kill workers, fail their jobs cleanly."""
        for job_id, worker in list(active.items()):
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join()
            del active[job_id]
            record = self.store.get(job_id)
            error = {"attempt": worker.attempt, "type": "SupervisorTimeout",
                     "message": f"supervision run exceeded "
                                f"{self.config.max_wall_seconds}s"}
            self._record_failure(record, worker.attempt, error, report)

    def _jitter(self, job_id: str, attempt: int) -> float:
        """Deterministic jitter in ``[0, jitter_seconds)``."""
        digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
        return self.config.jitter_seconds * fraction

    def _emit(self, event: str, **fields) -> None:
        if self.trace is not None:
            self.trace({"event": event, "time": round(time.time(), 6),
                        **fields})
