"""Deterministic fault injection -- one vocabulary for sweeps and jobs.

Chaos engineering only works when the chaos is *reproducible*: a fault
schedule must fire at the same operation, in the same attempt, every run.
This module is the single entry point for injected failures across the
codebase -- the sweep runner's historical ad-hoc ``_inject_fault`` hook and
the job supervisor's chaos harness both parse the same specs and drive the
same :class:`FaultInjector`.

Fault specs (strings, stored in :class:`~repro.simulation.sweep.SweepTask`
``fault`` / :class:`~repro.service.jobs.JobSpec` ``fault``):

``raise`` / ``hang`` / ``os._exit``
    Legacy start-of-cell faults: raise a ``RuntimeError``, sleep for an
    hour (exercises timeouts and lease expiry), or hard-kill the worker
    process.  These fire on *every* attempt -- they model poison inputs.
``kill@K``
    Hard-kill the worker (``os._exit``) right after elementary operation
    ``K`` completes.  Models an OOM kill / segfault mid-run.
``latency=S``
    Sleep ``S`` seconds after every operation.  Models a pathologically
    slow worker; with a lease shorter than ``S`` it forces lease expiry.
``budget@K``
    Raise :class:`InjectedBudgetFault` (a
    :class:`~repro.simulation.memory.MemoryBudgetExceeded`) after
    operation ``K`` -- the engine's resilient driver writes a checkpoint
    on the way out exactly as for a real budget abort.
``truncate-checkpoint@K`` / ``corrupt-checkpoint@K``
    After operation ``K``, truncate (or overwrite with garbage) the run's
    checkpoint file, then hard-kill the worker.  The retry must detect the
    damage (:class:`~repro.simulation.checkpoint.CheckpointError`) and
    restart from operation 0 instead of poisoning the job.

Every op-scoped fault fires only while ``attempt <= fault.attempts``
(default: the first attempt), so a retried job stops being sabotaged and
can complete -- append ``:xN`` to keep a fault active for the first ``N``
attempts (``kill@12:x2``).  The legacy start faults ignore the attempt
(``attempts=None`` -- always active).

:class:`Deadline` is the cooperative timeout companion: a per-op callback
that raises when a wall-clock budget is exceeded, used wherever
``SIGALRM`` is unavailable (and as a belt-and-braces second layer where it
is).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..simulation.memory import MemoryBudgetExceeded

__all__ = ["Deadline", "Fault", "FaultInjector", "InjectedBudgetFault",
           "chain_hooks", "parse_fault", "EXIT_CODE"]

#: exit status used by hard-kill faults (mimics an abrupt worker death)
EXIT_CODE = 86

#: legacy start-of-run fault kinds (fire before the first operation, on
#: every attempt)
_START_KINDS = ("raise", "hang", "os._exit")

#: op-scoped fault kinds (fire from a per-op-boundary callback)
_OP_KINDS = ("kill", "latency", "budget", "truncate-checkpoint",
             "corrupt-checkpoint")


class InjectedBudgetFault(MemoryBudgetExceeded):
    """A fault-injected memory-budget abort.

    Subclasses :class:`MemoryBudgetExceeded` so every layer above (the
    engine's checkpoint-on-failure path, the sweep's failure records, the
    supervisor's retry logic) treats it exactly like a real budget abort,
    while the type name keeps injected failures recognisable in reports.
    """

    def __init__(self, op_index: int) -> None:
        MemoryError.__init__(
            self, f"injected MemoryBudgetExceeded after operation "
                  f"{op_index}")
        self.live_nodes = 0
        self.max_nodes = 0
        self.checkpoint_path: str | None = None


@dataclass(frozen=True)
class Fault:
    """One parsed fault: what to do, when, and for how many attempts."""

    kind: str
    #: 0-based elementary-operation boundary for op-scoped faults
    at_op: int | None = None
    #: per-op sleep for ``latency`` faults
    seconds: float = 0.0
    #: fault is active while ``attempt <= attempts``; ``None`` = always
    attempts: int | None = 1

    @property
    def op_scoped(self) -> bool:
        return self.kind in _OP_KINDS


def parse_fault(spec: str | None) -> Fault | None:
    """Parse a fault spec string; ``None`` passes through.

    Raises :class:`ValueError` naming the malformed spec -- a bad schedule
    should fail the submission, not every individual run.
    """
    if spec is None:
        return None
    text, attempts = spec, 1
    if ":x" in text:
        text, _, scope = text.rpartition(":x")
        try:
            attempts = int(scope)
        except ValueError:
            raise ValueError(f"bad fault attempt scope in {spec!r} "
                             f"(expected ':x<N>')") from None
        if attempts < 1:
            raise ValueError(f"fault attempt scope must be >= 1 in {spec!r}")
    if text in _START_KINDS:
        if ":x" in spec:
            raise ValueError(f"start fault {text!r} fires on every attempt; "
                             f"an ':xN' scope does not apply ({spec!r})")
        return Fault(kind=text, attempts=None)
    if text.startswith("latency="):
        try:
            seconds = float(text[len("latency="):])
        except ValueError:
            raise ValueError(f"bad latency fault {spec!r} "
                             f"(expected 'latency=<seconds>')") from None
        if seconds < 0:
            raise ValueError(f"latency must be >= 0 in {spec!r}")
        return Fault(kind="latency", seconds=seconds, attempts=attempts)
    if "@" in text:
        kind, _, position = text.partition("@")
        if kind in ("kill", "budget", "truncate-checkpoint",
                    "corrupt-checkpoint"):
            try:
                at_op = int(position)
            except ValueError:
                raise ValueError(f"bad fault op index in {spec!r} "
                                 f"(expected '{kind}@<op>')") from None
            if at_op < 0:
                raise ValueError(f"fault op index must be >= 0 in {spec!r}")
            return Fault(kind=kind, at_op=at_op, attempts=attempts)
    raise ValueError(
        f"unknown fault injection {spec!r} (expected one of "
        f"{', '.join(_START_KINDS)}, kill@K, latency=S, budget@K, "
        f"truncate-checkpoint@K, corrupt-checkpoint@K, "
        f"optionally scoped ':xN')")


class FaultInjector:
    """Drives one parsed fault against one run attempt.

    Parameters
    ----------
    fault:
        A :class:`Fault` (or spec string, or ``None`` for no fault).
    in_worker:
        Whether the current process is a disposable worker.  Hard-kill
        faults only ever ``os._exit`` in workers; inline execution records
        the would-be crash as an ordinary ``RuntimeError`` instead -- a
        fault must never take the caller's process down.
    attempt:
        1-based attempt number; op-scoped faults are inert once
        ``attempt > fault.attempts``.
    label:
        Human-readable run identity used in raised messages.
    checkpoint_path:
        Where the run writes checkpoints; required by the
        checkpoint-damage faults.
    """

    def __init__(self, fault: Fault | str | None, *, in_worker: bool,
                 attempt: int = 1, label: str = "run",
                 checkpoint_path: str | None = None) -> None:
        if isinstance(fault, str):
            fault = parse_fault(fault)
        self.fault = fault
        self.in_worker = in_worker
        self.attempt = attempt
        self.label = label
        self.checkpoint_path = checkpoint_path
        self.fired = False

    @property
    def active(self) -> bool:
        fault = self.fault
        if fault is None:
            return False
        return fault.attempts is None or self.attempt <= fault.attempts

    @property
    def wants_op_hook(self) -> bool:
        """Whether this injector must be wired into the per-op callback."""
        return self.active and self.fault.op_scoped

    # -- firing points ---------------------------------------------------

    def at_start(self) -> None:
        """Fire a legacy start-of-run fault, if any."""
        if not self.active or self.fault.kind not in _START_KINDS:
            return
        kind = self.fault.kind
        if kind == "raise":
            raise RuntimeError(f"injected failure in {self.label}")
        if kind == "hang":
            time.sleep(3600)
            return
        if kind == "os._exit":
            self._die("start")

    def on_op(self, op_index: int) -> None:
        """Per-op-boundary firing point (``op_index`` just completed)."""
        if not self.wants_op_hook:
            return
        fault = self.fault
        if fault.kind == "latency":
            time.sleep(fault.seconds)
            return
        if op_index != fault.at_op:
            return
        self.fired = True
        if fault.kind == "kill":
            self._die(f"op {op_index}")
        elif fault.kind == "budget":
            raise InjectedBudgetFault(op_index)
        elif fault.kind in ("truncate-checkpoint", "corrupt-checkpoint"):
            self._damage_checkpoint(fault.kind)
            self._die(f"op {op_index}, after damaging the checkpoint")

    # -- helpers ---------------------------------------------------------

    def _die(self, where: str) -> None:
        if self.in_worker:
            os._exit(EXIT_CODE)  # mimic an OOM kill / hard crash
        # Inline execution must never take the whole process down; record
        # the would-be crash as an ordinary failure instead.
        raise RuntimeError(
            f"{self.label} would have killed its worker at {where} "
            "(hard-kill faults run only in worker processes)")

    def _damage_checkpoint(self, kind: str) -> None:
        path = self.checkpoint_path
        if path is None or not os.path.exists(path):
            return
        if kind == "truncate-checkpoint":
            # keep a prefix so the damage parses as *truncated JSON*, the
            # exact mid-write shape the loader must reject cleanly
            with open(path, "r+", encoding="utf-8") as handle:
                handle.truncate(max(1, os.path.getsize(path) // 3))
        else:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write('{"version": 2, "op_index": "garbage"')


class Deadline:
    """Cooperative wall-clock budget, checked at per-op boundaries.

    ``SIGALRM`` timeouts only exist on POSIX main threads; everywhere else
    a run used to exceed its budget silently.  A :class:`Deadline` is a
    plain callable for the engine's ``on_op`` hook: it raises
    ``exception_type`` as soon as an operation boundary passes the budget.
    It cannot interrupt a single operation that never finishes (that still
    needs ``SIGALRM`` or the supervisor's lease expiry), but it bounds
    every run that makes progress.
    """

    def __init__(self, seconds: float, exception_type: type[Exception],
                 label: str = "run") -> None:
        self.seconds = seconds
        self.exception_type = exception_type
        self.label = label
        self.started = time.monotonic()

    def __call__(self, op_index: int) -> None:
        elapsed = time.monotonic() - self.started
        if elapsed > self.seconds:
            raise self.exception_type(
                f"{self.label} exceeded {self.seconds}s "
                f"(cooperative deadline after operation {op_index}, "
                f"{elapsed:.3f}s elapsed)")


def chain_hooks(*hooks):
    """Compose per-op callbacks; ``None`` entries are skipped.

    Returns a single ``on_op`` callable, or ``None`` when every hook is
    ``None`` -- so callers can pass the result straight to the engine
    without re-enabling the hook path for nothing.
    """
    active = [hook for hook in hooks if hook is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def on_op(op_index: int) -> None:
        for hook in active:
            hook(op_index)

    return on_op
