"""Memory governance for long-running simulations.

The engine keeps a DD package's unique tables bounded by garbage-collecting
past a node limit.  A *fixed* limit has a pathological failure mode: once
the reachable working set itself exceeds the limit, every simulation step
re-triggers a collection that frees nothing -- each one a full mark-sweep
plus (historically) a wholesale compute-table wipe.  Exactly the large
instances the paper targets (Shor, supremacy) hit this thrash regime first.

:class:`MemoryGovernor` turns the limit into a policy: after an ineffective
collection the threshold grows geometrically past the surviving working set
(``limit = max(limit, growth_factor * surviving)``), so a mostly-reachable
package stops re-triggering wipes and collection frequency stays
proportional to actual garbage production.  An optional hard ``max_nodes``
budget converts "grind until the machine swaps" into a clean
:class:`MemoryBudgetExceeded`.
"""

from __future__ import annotations

__all__ = ["DegradationPolicy", "MemoryBudgetExceeded", "MemoryGovernor"]


class MemoryBudgetExceeded(MemoryError):
    """The reachable working set exceeds the configured hard node budget.

    Raised by :class:`MemoryGovernor` after a garbage collection (and, when
    a :class:`DegradationPolicy` is active, the whole degradation ladder)
    could not bring the package under ``max_nodes``: every surviving node
    is needed by the run, so continuing would only grind.  The simulation
    state is consistent when this is raised (the partial state remains
    queryable), and when the engine was checkpointing, ``checkpoint_path``
    names the checkpoint written just before raising -- the run can be
    resumed on a bigger budget.
    """

    def __init__(self, live_nodes: int, max_nodes: int) -> None:
        super().__init__(
            f"DD package holds {live_nodes} reachable nodes, exceeding the "
            f"hard budget of {max_nodes}; the circuit's working set does "
            "not fit the configured memory budget")
        self.live_nodes = live_nodes
        self.max_nodes = max_nodes
        #: set by the engine when an on-failure checkpoint was written
        self.checkpoint_path: str | None = None


class DegradationPolicy:
    """Ordered fallbacks the engine tries before giving up on the budget.

    When the governor's hard ``max_nodes`` budget is hit, an engine with a
    degradation policy walks a ladder instead of raising immediately:

    1. *collect* -- force a garbage collection even below the GC threshold;
    2. *shrink-tables* -- resize every compute table down to
       ``compute_table_slots`` slots and drop the engine's gate-DD caches
       (all of it rebuildable, traded for memory once per run);
    3. *prune* -- cut negligible state-DD branches with
       :func:`~repro.dd.approximation.prune_to_node_budget`, never letting
       the *cumulative* fidelity across all prunes fall below
       ``fidelity_floor``;
    4. give up -- let :class:`MemoryBudgetExceeded` propagate (the engine
       writes a checkpoint first when one was requested).

    Every action taken is recorded here, in the run's
    :class:`~repro.simulation.statistics.SimulationStatistics`, and as a
    ``degrade`` trace event.  The policy is stateful per run sequence: a
    resumed run restores ``cumulative_fidelity`` from its checkpoint so the
    floor is enforced across the whole logical run, not per segment.

    Parameters
    ----------
    fidelity_floor:
        Lower bound on the product of all pruning fidelities.  ``1.0``
        forbids pruning entirely (steps 1-2 still run).
    compute_table_slots:
        Slot count the compute tables are shrunk to in step 2 (rounded up
        to a power of two).
    prune_target_fraction:
        Step 3 prunes the state DD down to this fraction of ``max_nodes``,
        leaving headroom for products and caches.
    prune_initial_budget / prune_growth:
        Forwarded to :func:`prune_to_node_budget`.
    """

    def __init__(self, fidelity_floor: float = 0.99,
                 compute_table_slots: int = 1024,
                 prune_target_fraction: float = 0.5,
                 prune_initial_budget: float = 1e-6,
                 prune_growth: float = 8.0) -> None:
        if not 0.0 < fidelity_floor <= 1.0:
            raise ValueError(f"fidelity_floor must be in (0, 1], "
                             f"got {fidelity_floor}")
        if compute_table_slots < 1:
            raise ValueError(f"compute_table_slots must be positive, "
                             f"got {compute_table_slots}")
        if not 0.0 < prune_target_fraction <= 1.0:
            raise ValueError(f"prune_target_fraction must be in (0, 1], "
                             f"got {prune_target_fraction}")
        self.fidelity_floor = fidelity_floor
        self.compute_table_slots = compute_table_slots
        self.prune_target_fraction = prune_target_fraction
        self.prune_initial_budget = prune_initial_budget
        self.prune_growth = prune_growth
        #: product of all pruning fidelities so far (1.0 = still exact)
        self.cumulative_fidelity = 1.0
        #: whether step 2 already ran (it only pays once per run)
        self.tables_shrunk = False
        #: every action taken, in order (dicts mirroring the trace events)
        self.actions: list[dict] = []

    def allows_prune(self) -> bool:
        """Whether any fidelity headroom remains above the floor."""
        return self.cumulative_fidelity > self.fidelity_floor

    def record(self, action: dict) -> None:
        """Record one ladder action; fold its ``fidelity`` (if any) into
        the cumulative product."""
        self.actions.append(action)
        fidelity = action.get("fidelity")
        if fidelity is not None:
            self.cumulative_fidelity *= fidelity

    # -- checkpoint round trip -----------------------------------------

    def state_dict(self) -> dict:
        return {
            "fidelity_floor": self.fidelity_floor,
            "cumulative_fidelity": self.cumulative_fidelity,
            "tables_shrunk": self.tables_shrunk,
            "actions_taken": len(self.actions),
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore the floor-relevant state from a checkpoint.

        The action log itself lives in the checkpointed statistics; only
        what changes future decisions (cumulative fidelity, the
        shrink-once latch) is restored here.
        """
        self.cumulative_fidelity = float(
            payload.get("cumulative_fidelity", 1.0))
        self.tables_shrunk = bool(payload.get("tables_shrunk", False))

    def describe(self) -> str:
        return (f"degrade(floor={self.fidelity_floor:g}, "
                f"slots={self.compute_table_slots}, "
                f"target={self.prune_target_fraction:g})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DegradationPolicy({self.describe()})"


class MemoryGovernor:
    """Adaptive garbage-collection policy for a simulation engine.

    Parameters
    ----------
    node_limit:
        Initial collection threshold: a collection is requested when the
        package holds more interned nodes than this.  ``None`` disables
        collection entirely (``max_nodes`` is still enforced).
    growth_factor:
        After a collection that leaves the package above the current limit
        (i.e. the reachable working set alone exceeds it), the limit grows
        to ``growth_factor * surviving_nodes``.  ``1.0`` reproduces the
        legacy fixed-threshold behaviour -- including its per-step thrash
        when the working set outgrows the limit.
    max_nodes:
        Optional hard budget: when even a collection cannot bring the live
        node count under this, :class:`MemoryBudgetExceeded` is raised
        instead of grinding on.
    min_headroom:
        Lower bound on the gap between a grown threshold and the surviving
        working set.  Geometric growth alone leaves only
        ``(growth_factor - 1) * surviving`` nodes of slack, which for a
        *small* working set above a tiny limit is a handful of nodes --
        consumed within a step or two, re-triggering collection almost as
        fast as a fixed threshold.  The floor guarantees every grown
        threshold buys a proportional amount of garbage production before
        the next collection.  4096 nodes is ~1 MB of DD nodes.

    The governor is stateful per engine, not per run: a long-lived engine
    keeps its grown threshold across circuits (call :meth:`reset` to return
    to the initial limit).
    """

    def __init__(self, node_limit: int | None = 500_000,
                 growth_factor: float = 1.5,
                 max_nodes: int | None = None,
                 min_headroom: int = 4096) -> None:
        if node_limit is not None and node_limit < 1:
            raise ValueError(f"node_limit must be positive or None, "
                             f"got {node_limit}")
        if growth_factor < 1.0:
            raise ValueError(f"growth_factor must be >= 1.0, "
                             f"got {growth_factor}")
        if max_nodes is not None and max_nodes < 1:
            raise ValueError(f"max_nodes must be positive or None, "
                             f"got {max_nodes}")
        if min_headroom < 0:
            raise ValueError(f"min_headroom must be non-negative, "
                             f"got {min_headroom}")
        self.initial_limit = node_limit
        self.limit = node_limit
        self.growth_factor = growth_factor
        self.max_nodes = max_nodes
        self.min_headroom = min_headroom
        #: collections this governor requested
        self.collections_requested = 0
        #: times the limit was grown after an ineffective collection
        self.limit_growths = 0
        #: flat-kernel slots freed across all collections (iterative kernel)
        self.flat_slots_freed = 0

    # ------------------------------------------------------------------

    def should_collect(self, live_nodes: int) -> bool:
        """Whether the engine should garbage-collect at ``live_nodes``."""
        return self.limit is not None and live_nodes > self.limit

    def note_collection(self, freed: int, surviving: int,
                        flat_freed: int = 0) -> bool:
        """Record a collection's outcome; grow the limit if it was futile.

        ``flat_freed`` is the portion of ``freed`` that came from the
        iterative kernel's flat-array compaction (0 on the recursive
        kernel) -- tracked so A/B runs can see which store produced the
        garbage.  Returns ``True`` when the threshold was grown -- the
        signal that the surviving working set exceeds the old limit, so
        re-collecting next step would free (almost) nothing again.
        """
        self.collections_requested += 1
        self.flat_slots_freed += flat_freed
        if self.limit is None or surviving <= self.limit:
            return False
        if self.growth_factor <= 1.0:
            # Legacy fixed-threshold mode: never adapt (and thrash when the
            # working set outgrows the limit) -- kept for A/B benchmarks.
            return False
        self.limit = max(self.limit + 1,
                         int(self.growth_factor * surviving),
                         surviving + self.min_headroom)
        self.limit_growths += 1
        return True

    def check_budget(self, live_nodes: int) -> None:
        """Raise :class:`MemoryBudgetExceeded` past the hard budget."""
        if self.max_nodes is not None and live_nodes > self.max_nodes:
            raise MemoryBudgetExceeded(live_nodes, self.max_nodes)

    def reset(self) -> None:
        """Return to the initial limit (policy stats are kept)."""
        self.limit = self.initial_limit

    # ------------------------------------------------------------------

    def describe(self) -> str:
        limit = "off" if self.limit is None else str(self.limit)
        budget = "" if self.max_nodes is None \
            else f", max_nodes={self.max_nodes}"
        return (f"governor(limit={limit}, "
                f"growth={self.growth_factor:g}{budget})")

    def stats(self) -> dict:
        """Machine-readable policy counters (for benchmarks and traces)."""
        return {
            "initial_limit": self.initial_limit,
            "limit": self.limit,
            "growth_factor": self.growth_factor,
            "max_nodes": self.max_nodes,
            "collections_requested": self.collections_requested,
            "limit_growths": self.limit_growths,
            "flat_slots_freed": self.flat_slots_freed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryGovernor({self.describe()})"
