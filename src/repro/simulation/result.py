"""Simulation results: final state plus the measurements taken on the way."""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..dd.edge import Edge
from ..dd.measurement import all_probabilities, sample_counts
from ..dd.package import Package
from .statistics import SimulationStatistics

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Final state DD of a run together with its statistics.

    The result keeps a reference to the :class:`Package` that owns the state
    DD, so amplitudes and samples can be queried after the run.
    """

    state: Edge
    package: Package
    statistics: SimulationStatistics

    @property
    def num_qubits(self) -> int:
        return self.statistics.num_qubits

    def amplitude(self, basis_index: int) -> complex:
        """Amplitude of computational basis state ``|basis_index>``."""
        return self.package.amplitude(self.state, basis_index)

    def probability(self, basis_index: int) -> float:
        return abs(self.amplitude(basis_index)) ** 2

    def probabilities(self) -> list[float]:
        """All ``2^n`` outcome probabilities (exponential; small systems only)."""
        return all_probabilities(self.package, self.state, self.num_qubits)

    def sample(self, shots: int, rng: Random | None = None) -> dict[int, int]:
        """Measurement histogram over ``shots`` shots."""
        return sample_counts(self.package, self.state, shots,
                             rng or Random(0))

    def state_nodes(self) -> int:
        """Node count of the final state DD."""
        return self.package.count_nodes(self.state)

    def fidelity_with(self, other: "SimulationResult") -> float:
        """``|<self|other>|^2`` -- 1.0 when two strategies agree."""
        if self.package is not other.package:
            raise ValueError("states live in different DD packages; "
                             "simulate with a shared package to compare")
        return self.package.fidelity(self.state, other.state)

    def expectation(self, pauli) -> float:
        """Expectation value of a Pauli string (see
        :func:`repro.dd.observables.pauli_expectation`)."""
        from ..dd.observables import pauli_expectation

        return pauli_expectation(self.package, pauli, self.state,
                                 self.num_qubits)

    def entanglement_entropy(self, subsystem, base: float = 2.0) -> float:
        """Von Neumann entropy of ``subsystem`` vs. the rest (in bits)."""
        from ..analysis.entanglement import entanglement_entropy

        return entanglement_entropy(self.package, self.state, subsystem,
                                    base=base)
