"""Simulation results: final state plus the measurements taken on the way."""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..dd.edge import Edge
from ..dd.measurement import all_probabilities, sample_counts
from ..dd.package import Package
from ..dd.reordering import apply_index_permutation, permute_qubits
from .statistics import SimulationStatistics

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Final state DD of a run together with its statistics.

    The result keeps a reference to the :class:`Package` that owns the state
    DD, so amplitudes and samples can be queried after the run.

    A run that reordered its variables mid-flight (``reorder=`` policy)
    leaves the state DD under the sifted order and records the cumulative
    permutation here (``permutation[q]`` = DD level of original qubit
    ``q``).  Every query below transparently translates, so callers always
    see *logical* qubit order -- amplitudes, probabilities, samples,
    expectation values and entropies are identical to an unreordered run's
    up to floating-point noise.
    """

    state: Edge
    package: Package
    statistics: SimulationStatistics
    #: cumulative qubit-to-level permutation left by mid-run reordering,
    #: or ``None`` when the state is in natural (logical) order
    permutation: list[int] | None = None

    @property
    def num_qubits(self) -> int:
        return self.statistics.num_qubits

    def _physical_index(self, basis_index: int) -> int:
        """The stored-state index holding logical ``basis_index``."""
        if self.permutation is None:
            return basis_index
        return apply_index_permutation(basis_index, self.permutation)

    def logical_state(self) -> Edge:
        """The state DD reordered back to logical (natural) qubit order.

        Identity-order runs return the state as-is; after a reorder this
        rebuilds the DD (which may be much larger in natural order -- that
        is the point of reordering) so it can be compared node-for-node
        with an unreordered run's state.
        """
        if self.permutation is None:
            return self.state
        inverse = [0] * len(self.permutation)
        for qubit, level in enumerate(self.permutation):
            inverse[level] = qubit
        return permute_qubits(self.package, self.state, inverse,
                              size=self.num_qubits)

    def amplitude(self, basis_index: int) -> complex:
        """Amplitude of computational basis state ``|basis_index>``."""
        return self.package.amplitude(self.state,
                                      self._physical_index(basis_index))

    def probability(self, basis_index: int) -> float:
        return abs(self.amplitude(basis_index)) ** 2

    def probabilities(self) -> list[float]:
        """All ``2^n`` outcome probabilities (exponential; small systems only)."""
        raw = all_probabilities(self.package, self.state, self.num_qubits)
        if self.permutation is None:
            return raw
        return [raw[self._physical_index(index)]
                for index in range(len(raw))]

    def sample(self, shots: int, rng: Random | None = None) -> dict[int, int]:
        """Measurement histogram over ``shots`` shots (logical indices)."""
        counts = sample_counts(self.package, self.state, shots,
                               rng or Random(0))
        if self.permutation is None:
            return counts
        inverse = [0] * len(self.permutation)
        for qubit, level in enumerate(self.permutation):
            inverse[level] = qubit
        return {apply_index_permutation(outcome, inverse): hits
                for outcome, hits in counts.items()}

    def state_nodes(self) -> int:
        """Node count of the final state DD (under its stored order)."""
        return self.package.count_nodes(self.state)

    def fidelity_with(self, other: "SimulationResult") -> float:
        """``|<self|other>|^2`` -- 1.0 when two strategies agree.

        Results reordered differently are compared in logical order (the
        one with fewer natural-order nodes is rebuilt), so the fidelity is
        between the physical states both runs represent.
        """
        if self.package is not other.package:
            raise ValueError("states live in different DD packages; "
                             "simulate with a shared package to compare")
        if self.permutation == other.permutation:
            return self.package.fidelity(self.state, other.state)
        return self.package.fidelity(self.logical_state(),
                                     other.logical_state())

    def expectation(self, pauli) -> float:
        """Expectation value of a Pauli string (see
        :func:`repro.dd.observables.pauli_expectation`)."""
        from ..dd.observables import pauli_expectation

        return pauli_expectation(self.package, pauli, self.logical_state(),
                                 self.num_qubits)

    def entanglement_entropy(self, subsystem, base: float = 2.0) -> float:
        """Von Neumann entropy of ``subsystem`` vs. the rest (in bits)."""
        from ..analysis.entanglement import entanglement_entropy

        return entanglement_entropy(self.package, self.logical_state(),
                                    subsystem, base=base)
