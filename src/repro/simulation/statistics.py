"""Per-run instrumentation.

The paper's argument is about *where the multiplication effort goes*: how
many matrix-vector multiplications touch the (large) state DD, how many
matrix-matrix multiplications combine (small) operation DDs, and how big the
involved diagrams get.  :class:`SimulationStatistics` records exactly those
quantities, plus machine-independent recursive-call counters from the DD
package, so strategy comparisons do not depend on wall-clock noise alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dd.package import GcStats, OperationCounters

__all__ = ["SimulationStatistics"]


@dataclass
class SimulationStatistics:
    """Everything measured during one simulation run."""

    strategy: str = ""
    circuit_name: str = ""
    num_qubits: int = 0
    #: elementary operations consumed (repeated blocks unrolled)
    operations_applied: int = 0
    #: top-level matrix-vector multiplications (state updates, Eq. 1 steps)
    matrix_vector_mults: int = 0
    #: state updates served by the local-gate fast path (a subset of
    #: ``matrix_vector_mults``: every local application is one Eq. 1 step)
    local_gate_applications: int = 0
    #: top-level matrix-matrix multiplications (operation combining, Eq. 2)
    matrix_matrix_mults: int = 0
    #: matrix applications answered by a re-used combined DD (DD-repeating)
    reused_block_applications: int = 0
    #: oracle DDs constructed directly from function specs (DD-construct)
    direct_constructions: int = 0
    peak_state_nodes: int = 0
    peak_matrix_nodes: int = 0
    final_state_nodes: int = 0
    wall_time_seconds: float = 0.0
    #: recursive-call deltas accumulated in the DD package during the run
    counters: OperationCounters = field(default_factory=OperationCounters)
    #: garbage-collection telemetry accumulated during the run
    gc: GcStats = field(default_factory=GcStats)

    def record_state_size(self, nodes: int) -> None:
        if nodes > self.peak_state_nodes:
            self.peak_state_nodes = nodes

    def record_matrix_size(self, nodes: int) -> None:
        if nodes > self.peak_matrix_nodes:
            self.peak_matrix_nodes = nodes

    def merge(self, other: "SimulationStatistics") -> None:
        """Accumulate another run's numbers (used by multi-segment drivers)."""
        self.operations_applied += other.operations_applied
        self.matrix_vector_mults += other.matrix_vector_mults
        self.local_gate_applications += other.local_gate_applications
        self.matrix_matrix_mults += other.matrix_matrix_mults
        self.reused_block_applications += other.reused_block_applications
        self.direct_constructions += other.direct_constructions
        self.peak_state_nodes = max(self.peak_state_nodes,
                                    other.peak_state_nodes)
        self.peak_matrix_nodes = max(self.peak_matrix_nodes,
                                     other.peak_matrix_nodes)
        self.final_state_nodes = other.final_state_nodes
        self.wall_time_seconds += other.wall_time_seconds
        self.counters.add_recursions += other.counters.add_recursions
        self.counters.mult_mv_recursions += other.counters.mult_mv_recursions
        self.counters.mult_mm_recursions += other.counters.mult_mm_recursions
        self.counters.kron_recursions += other.counters.kron_recursions
        self.counters.nodes_created += other.counters.nodes_created
        self.counters.apply_gate_recursions += \
            other.counters.apply_gate_recursions
        self.gc.collections += other.gc.collections
        self.gc.nodes_freed += other.gc.nodes_freed
        self.gc.pause_seconds += other.gc.pause_seconds
        self.gc.compute_entries_dropped += other.gc.compute_entries_dropped
        self.gc.ineffective += other.gc.ineffective

    def summary(self) -> str:
        """Compact human-readable one-paragraph report."""
        return (
            f"[{self.strategy}] {self.circuit_name}: "
            f"{self.operations_applied} ops -> "
            f"{self.matrix_vector_mults} MxV + "
            f"{self.matrix_matrix_mults} MxM mults "
            f"({self.reused_block_applications} reused, "
            f"{self.direct_constructions} direct), "
            f"peak state {self.peak_state_nodes} / "
            f"matrix {self.peak_matrix_nodes} nodes, "
            f"{self.gc.collections} GC "
            f"({self.gc.nodes_freed} freed, "
            f"{self.gc.pause_seconds:.3f}s paused), "
            f"{self.wall_time_seconds:.3f}s")
