"""Per-run instrumentation.

The paper's argument is about *where the multiplication effort goes*: how
many matrix-vector multiplications touch the (large) state DD, how many
matrix-matrix multiplications combine (small) operation DDs, and how big the
involved diagrams get.  :class:`SimulationStatistics` records exactly those
quantities, plus machine-independent recursive-call counters from the DD
package, so strategy comparisons do not depend on wall-clock noise alone.

For resilient long runs the statistics additionally record every
*degradation action* (GC under pressure, compute-table shrinking,
fidelity-bounded pruning) together with the cumulative fidelity retained,
and how many checkpoints were written -- and the whole record round-trips
through :meth:`as_dict` / :meth:`from_dict` so a resumed run continues its
predecessor's numbers instead of starting from zero.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..dd.package import GcStats, OperationCounters

__all__ = ["SimulationStatistics"]


@dataclass
class SimulationStatistics:
    """Everything measured during one simulation run."""

    strategy: str = ""
    circuit_name: str = ""
    num_qubits: int = 0
    #: registry name of the backend that produced this run ("" on direct
    #: engine runs that bypass the backend layer)
    backend: str = ""
    #: the ``auto`` selector's decision record: chosen backend, the
    #: feature vector it scored, per-backend scores and a reason string
    #: (empty when the backend was chosen explicitly)
    backend_selection: dict = field(default_factory=dict)
    #: elementary operations consumed (repeated blocks unrolled)
    operations_applied: int = 0
    #: top-level matrix-vector multiplications (state updates, Eq. 1 steps)
    matrix_vector_mults: int = 0
    #: state updates served by the local-gate fast path (a subset of
    #: ``matrix_vector_mults``: every local application is one Eq. 1 step)
    local_gate_applications: int = 0
    #: top-level matrix-matrix multiplications (operation combining, Eq. 2)
    matrix_matrix_mults: int = 0
    #: matrix applications answered by a re-used combined DD (DD-repeating)
    reused_block_applications: int = 0
    #: oracle DDs constructed directly from function specs (DD-construct)
    direct_constructions: int = 0
    peak_state_nodes: int = 0
    peak_matrix_nodes: int = 0
    final_state_nodes: int = 0
    wall_time_seconds: float = 0.0
    #: recursive-call deltas accumulated in the DD package during the run
    counters: OperationCounters = field(default_factory=OperationCounters)
    #: garbage-collection telemetry accumulated during the run
    gc: GcStats = field(default_factory=GcStats)
    #: every degradation action taken under memory pressure (one flat dict
    #: per action; mirrors the ``degrade`` trace events)
    degradation_actions: list = field(default_factory=list)
    #: product of the fidelities retained by all pruning passes (1.0 when
    #: the run never degraded -- the result is exact)
    cumulative_fidelity: float = 1.0
    #: checkpoints written during the run (periodic and on-failure)
    checkpoints_written: int = 0
    #: integrity audits run by the every-K-steps engine hook
    audits_run: int = 0
    #: mid-run variable reorders (sifts) performed
    reorders: int = 0
    #: total state-DD nodes saved by reordering (before - after, summed)
    reorder_nodes_saved: int = 0
    #: iterative-kernel dense-block cutovers during the run (0 on the
    #: recursive kernel; stamped from the package's kernel stats)
    dense_cutovers: int = 0
    #: end-of-run hit rate per compute/memo table (name -> rate in [0, 1];
    #: per-run only when the engine owns a fresh package).  These feed the
    #: coverage-guided fuzzer's novelty map; they are *not* part of the
    #: deterministic sweep payload -- slot collisions make them
    #: machine-sensitive.
    cache_hit_rates: dict = field(default_factory=dict)
    #: execution attempts consumed to produce this result (1 for a run
    #: that never failed; the job supervisor stamps the real count)
    attempts: int = 1
    #: flattened-operation index the *latest* segment resumed from (0 when
    #: the run -- or its final retry -- started from scratch)
    resumed_from_op: int = 0

    def record_state_size(self, nodes: int) -> None:
        if nodes > self.peak_state_nodes:
            self.peak_state_nodes = nodes

    def record_matrix_size(self, nodes: int) -> None:
        if nodes > self.peak_matrix_nodes:
            self.peak_matrix_nodes = nodes

    def record_degradation(self, action: dict) -> None:
        """Append one degradation action; fold any ``fidelity`` field into
        the cumulative product."""
        self.degradation_actions.append(action)
        fidelity = action.get("fidelity")
        if fidelity is not None:
            self.cumulative_fidelity *= fidelity

    def merge(self, other: "SimulationStatistics") -> None:
        """Accumulate another run's numbers (used by multi-segment drivers)."""
        self.operations_applied += other.operations_applied
        self.matrix_vector_mults += other.matrix_vector_mults
        self.local_gate_applications += other.local_gate_applications
        self.matrix_matrix_mults += other.matrix_matrix_mults
        self.reused_block_applications += other.reused_block_applications
        self.direct_constructions += other.direct_constructions
        self.peak_state_nodes = max(self.peak_state_nodes,
                                    other.peak_state_nodes)
        self.peak_matrix_nodes = max(self.peak_matrix_nodes,
                                     other.peak_matrix_nodes)
        self.final_state_nodes = other.final_state_nodes
        self.wall_time_seconds += other.wall_time_seconds
        self.counters.add_recursions += other.counters.add_recursions
        self.counters.mult_mv_recursions += other.counters.mult_mv_recursions
        self.counters.mult_mm_recursions += other.counters.mult_mm_recursions
        self.counters.kron_recursions += other.counters.kron_recursions
        self.counters.nodes_created += other.counters.nodes_created
        self.counters.apply_gate_recursions += \
            other.counters.apply_gate_recursions
        self.gc.collections += other.gc.collections
        self.gc.nodes_freed += other.gc.nodes_freed
        self.gc.pause_seconds += other.gc.pause_seconds
        self.gc.compute_entries_dropped += other.gc.compute_entries_dropped
        self.gc.ineffective += other.gc.ineffective
        self.degradation_actions.extend(other.degradation_actions)
        self.cumulative_fidelity *= other.cumulative_fidelity
        self.checkpoints_written += other.checkpoints_written
        self.audits_run += other.audits_run
        self.reorders += other.reorders
        self.reorder_nodes_saved += other.reorder_nodes_saved
        self.dense_cutovers += other.dense_cutovers
        # hit rates are end-of-run gauges, not counters: latest segment wins
        if other.cache_hit_rates:
            self.cache_hit_rates = dict(other.cache_hit_rates)
        self.attempts = max(self.attempts, other.attempts)
        # the merged record describes the run up to the *other* segment,
        # so the latest segment's resume offset wins
        self.resumed_from_op = other.resumed_from_op
        self.backend = other.backend or self.backend
        if other.backend_selection:
            self.backend_selection = dict(other.backend_selection)

    # -- serialisation (checkpoint format) ------------------------------

    def as_dict(self) -> dict:
        """JSON-compatible snapshot of every field (checkpoint payload)."""
        payload = asdict(self)
        payload["degradation_actions"] = list(self.degradation_actions)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationStatistics":
        """Rebuild statistics from :meth:`as_dict` output.

        Unknown keys are ignored (forward compatibility); missing keys
        keep their defaults (backward compatibility).
        """
        stats = cls()
        counters = payload.get("counters") or {}
        gc = payload.get("gc") or {}
        for key, value in payload.items():
            if key in ("counters", "gc"):
                continue
            if hasattr(stats, key):
                setattr(stats, key, value)
        for key, value in counters.items():
            if hasattr(stats.counters, key):
                setattr(stats.counters, key, value)
        for key, value in gc.items():
            if hasattr(stats.gc, key):
                setattr(stats.gc, key, value)
        return stats

    def summary(self) -> str:
        """Compact human-readable one-paragraph report."""
        degraded = "" if not self.degradation_actions else (
            f", {len(self.degradation_actions)} degradation action(s) "
            f"(fidelity {self.cumulative_fidelity:.6f})")
        retried = "" if self.attempts <= 1 else (
            f", attempt {self.attempts} "
            f"(resumed from op {self.resumed_from_op})")
        return (
            f"[{self.strategy}] {self.circuit_name}: "
            f"{self.operations_applied} ops -> "
            f"{self.matrix_vector_mults} MxV + "
            f"{self.matrix_matrix_mults} MxM mults "
            f"({self.reused_block_applications} reused, "
            f"{self.direct_constructions} direct), "
            f"peak state {self.peak_state_nodes} / "
            f"matrix {self.peak_matrix_nodes} nodes, "
            f"{self.gc.collections} GC "
            f"({self.gc.nodes_freed} freed, "
            f"{self.gc.pause_seconds:.3f}s paused)"
            f"{degraded}{retried}, "
            f"{self.wall_time_seconds:.3f}s")
