"""Runtime variable-reordering policy for the simulation engine.

The DD sizes every cost in the paper hinges on are hostage to the variable
order; "A Reorder Trick for Decision Diagram Based Quantum Circuit
Simulation" (arXiv 2211.07110) shows mid-run sifting shrinks intermediate
state DDs dramatically.  :class:`ReorderPolicy` decides *when* the engine
runs :func:`repro.dd.reordering.sift` on the state:

* ``"off"`` (no policy object) -- never reorder.
* ``"governor"`` -- reorder on memory pressure: after a garbage collection
  either left the live working set over the governor's hard ``max_nodes``
  budget or proved futile (the collection threshold had to grow because
  the working set itself outgrew it).  The engine runs the sift *before*
  the degradation ladder, so a cheaper variable order is tried before any
  lossy pruning.
* ``"every=K"`` -- reorder unconditionally every ``K`` consumed elementary
  operations (the cadence mode for studies and tests).

The policy carries the trigger bookkeeping only; the mechanics (sifting,
remapping the remaining operations, permuting pending products, fixing up
measurement indices and checkpoints) live in
:class:`~repro.simulation.engine.SimulationEngine`.
"""

from __future__ import annotations

__all__ = ["ReorderPolicy", "reorder_from_spec"]


class ReorderPolicy:
    """When-to-sift policy plus per-run reorder telemetry.

    Parameters
    ----------
    mode:
        ``"governor"`` (sift on memory pressure, before degradation) or
        ``"every"`` (sift every ``every`` operations).
    every:
        Operation cadence; required (and only meaningful) for
        ``mode="every"``.
    max_growth:
        Passed through to :func:`repro.dd.reordering.sift`: a sifting move
        is abandoned once the diagram exceeds this multiple of its best
        size.
    min_interval:
        Minimum number of consumed operations between two governor-pressure
        sifts (0 = no cooldown).  Guards against re-sifting every step when
        sifting cannot get the working set under budget anyway.
    min_nodes:
        States smaller than this are never sifted -- the bookkeeping would
        cost more than any conceivable saving.
    """

    def __init__(self, mode: str = "governor", every: int | None = None,
                 max_growth: float = 2.0, min_interval: int = 0,
                 min_nodes: int = 8) -> None:
        if mode not in ("governor", "every"):
            raise ValueError(f"reorder mode must be 'governor' or 'every', "
                             f"got {mode!r}")
        if mode == "every":
            if every is None or every < 1:
                raise ValueError(f"mode='every' needs every >= 1, "
                                 f"got {every!r}")
        elif every is not None:
            raise ValueError("every= is only meaningful with mode='every'")
        if max_growth < 1.0:
            raise ValueError(f"max_growth must be >= 1.0, got {max_growth}")
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, "
                             f"got {min_interval}")
        self.mode = mode
        self.every = every
        self.max_growth = max_growth
        self.min_interval = min_interval
        self.min_nodes = min_nodes
        #: operations consumed when the last sift ran (None = never)
        self.last_sift_ops: int | None = None
        self.sifts = 0
        self.nodes_before_total = 0
        self.nodes_after_total = 0

    def spec(self) -> str:
        """Spec string :func:`reorder_from_spec` re-parses equivalently."""
        return "governor" if self.mode == "governor" else f"every={self.every}"

    def describe(self) -> str:
        if self.mode == "governor":
            return "reorder(on governor pressure)"
        return f"reorder(every {self.every} ops)"

    # -- trigger decision ----------------------------------------------

    def should_reorder(self, ops_done: int, pressure: bool) -> bool:
        """Whether the engine should sift now.

        ``ops_done`` is the count of consumed elementary operations;
        ``pressure`` is the governor's memory-pressure signal (over the
        hard budget after a collection, or a futile collection).  Called
        on every governed step, possibly more than once per operation --
        the cadence/cooldown arithmetic makes repeats within one
        operation no-ops.
        """
        last = self.last_sift_ops
        if self.mode == "every":
            if last is None:
                return ops_done >= self.every
            return ops_done - last >= self.every
        if not pressure:
            return False
        return last is None or ops_done - last > self.min_interval

    def note_sift(self, ops_done: int, nodes_before: int,
                  nodes_after: int) -> None:
        """Record one executed (or skipped-as-too-small) sift."""
        self.last_sift_ops = ops_done
        self.sifts += 1
        self.nodes_before_total += nodes_before
        self.nodes_after_total += nodes_after


def reorder_from_spec(spec: "str | ReorderPolicy | None"
                      ) -> ReorderPolicy | None:
    """Parse a reorder spec: ``off``/``none``, ``governor`` or ``every=K``.

    Accepts an already constructed :class:`ReorderPolicy` (returned as-is)
    and ``None``/``"off"`` (returns ``None`` -- reordering disabled), so
    engine entry points can take either form.
    """
    if spec is None or isinstance(spec, ReorderPolicy):
        return spec
    text = spec.strip().lower()
    if text in ("", "off", "none"):
        return None
    if text in ("governor", "pressure"):
        return ReorderPolicy(mode="governor")
    if text.startswith("every="):
        raw = text[len("every="):]
        try:
            every = int(raw)
        except ValueError:
            raise ValueError(f"malformed reorder spec {spec!r}: expected "
                             f"an integer after 'every=', got {raw!r}") \
                from None
        return ReorderPolicy(mode="every", every=every)
    raise ValueError(f"unknown reorder spec {spec!r} (expected 'off', "
                     f"'governor' or 'every=K')")
