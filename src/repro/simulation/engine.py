"""The simulation engine.

Owns the DD package, builds gate DDs (with caching -- a circuit applying the
same Hadamard a thousand times builds its DD once), drives a
:class:`~repro.simulation.strategies.SimulationStrategy` over a circuit, and
records statistics.  Memory is governed by a
:class:`~repro.simulation.memory.MemoryGovernor`: when the package's unique
tables outgrow the governor's threshold, everything not reachable from the
run's roots (state, pending product, cached gate and block DDs) is freed --
and when a collection turns out to be futile (the working set itself has
outgrown the threshold) the governor grows the threshold instead of
re-collecting every step.  An opt-in ``trace`` callback streams per-step
telemetry (see :mod:`repro.simulation.trace`).

Long runs get a **resilience layer** on top:

* ``checkpoint_path`` / ``checkpoint_every`` write atomic, resumable
  snapshots (see :mod:`repro.simulation.checkpoint`) periodically and on
  :class:`~repro.simulation.memory.MemoryBudgetExceeded` or
  ``KeyboardInterrupt``; :meth:`SimulationEngine.resume` continues a
  checkpointed run bit-exactly.
* ``degradation`` (a :class:`~repro.simulation.memory.DegradationPolicy`)
  turns a hard budget overrun into an ordered ladder of fallbacks --
  collect, shrink compute tables, fidelity-bounded state pruning -- before
  giving up.
* ``audit_every`` runs the package's integrity auditor
  (:meth:`Package.check_invariants <repro.dd.package.Package.check_invariants>`)
  every K completed operations, failing fast on structural corruption.

Checkpointed/audited runs are driven through the *flattened* elementary
operation stream (``circuit.operations()`` order) so the checkpoint's
operation index is well-defined for every strategy; plain runs keep the
strategy's own ``execute`` fast path (and, for the repeating strategy, its
block-reuse optimisation).
"""

from __future__ import annotations

import gc
import time
from typing import Callable

from ..circuit.circuit import QuantumCircuit
from ..circuit.mapping import permute_operation
from ..circuit.operation import Operation
from ..dd.approximation import prune_to_node_budget
from ..dd.edge import Edge
from ..dd.kernel import FlatEdge
from ..dd.gate_building import build_gate_dd
from ..dd.package import Package
from ..dd.reordering import permute_qubits, sift
from ..dd.serialization import deserialize_dd, serialize_dd
from .checkpoint import (Checkpoint, circuit_fingerprint, load_checkpoint,
                         save_checkpoint)
from .memory import DegradationPolicy, MemoryBudgetExceeded, MemoryGovernor
from .reorder import ReorderPolicy, reorder_from_spec
from .result import SimulationResult
from .statistics import SimulationStatistics
from .strategies import (SequentialStrategy, SimulationStrategy,
                         strategy_from_spec)

__all__ = ["SimulationEngine"]


class _Run:
    """Mutable state of one simulation run, shared with the strategy."""

    def __init__(self, engine: "SimulationEngine", num_qubits: int,
                 state: Edge, statistics: SimulationStatistics,
                 trace: Callable[[dict], None] | None = None,
                 degradation: DegradationPolicy | None = None,
                 reorder: ReorderPolicy | None = None,
                 on_op: Callable[[int], None] | None = None) -> None:
        self.engine = engine
        self.package = engine.package
        self.num_qubits = num_qubits
        self.state = state
        self.statistics = statistics
        self.trace = trace
        #: per-op-boundary callback (heartbeats, cooperative deadlines,
        #: fault injection); see :meth:`tick` for the firing contract
        self.on_op = on_op
        #: monotone boundary counter fed to ``on_op`` on the plain path
        self.ops_ticked = 0
        #: the resilient driver ticks per flattened operation itself and
        #: flips this off so apply/combine do not double-fire the hook
        self._tick_in_apply = True
        self.track_state_size = engine.track_state_size
        self.degradation = degradation
        self.reorder = reorder
        #: the strategy driving this run (set by ``_execute``; the
        #: reordering hook needs to call back into it)
        self.strategy: SimulationStrategy | None = None
        #: cumulative variable permutation: ``permutation[q]`` is the DD
        #: level original qubit ``q`` currently lives on (None = identity)
        self.permutation: list[int] | None = None
        #: ``id(original op) -> (original, remapped)`` under the current
        #: permutation; the value pins the original so ids stay valid.
        #: Cleared on every reorder.
        self._remap_cache: dict[int, tuple[Operation, Operation]] = {}
        #: whether the most recent collection grew the governor threshold
        #: (the futile-collection memory-pressure signal)
        self._collection_grew = False
        #: node count of the last product returned by :meth:`combine` --
        #: lets size-bounded strategies reuse the measurement instead of
        #: re-counting the (growing) product DD on every feed
        self.last_product_nodes = 0
        #: index of the next flattened operation (resilient driver only)
        self.op_index = 0
        self._pending: Edge | None = None
        self._extra_roots: list[Edge] = []
        #: a freshly combined product, rooted across the collection that
        #: :meth:`combine` may trigger before the strategy adopts it
        self._combine_guard: Edge | None = None
        #: last consistent (op_index, state, pending, strategy_state)
        #: boundary -- what an exception-time checkpoint is written from
        self._last_good: tuple | None = None

    # -- operations the strategies use ---------------------------------

    def tick(self) -> None:
        """Fire the per-op-boundary hook (plain, non-resilient path).

        Plain runs tick once per unit of engine work -- every state
        update *and* every matrix-matrix combine -- with a monotone
        counter, which is what cooperative deadlines and heartbeats need.
        The resilient driver disables these ticks and fires the hook per
        flattened elementary operation instead, so op-indexed fault
        schedules line up exactly with checkpoint boundaries.
        """
        if self.on_op is not None and self._tick_in_apply:
            index = self.ops_ticked
            self.ops_ticked += 1
            self.on_op(index)

    def map_operation(self, operation: Operation) -> Operation:
        """The operation relabelled through the run's current permutation.

        Identity (no reorder yet) returns the operation unchanged; after a
        sift every circuit operation is translated to the reordered
        levels.  Remapped operations are cached per original (cleared at
        each reorder) so the engine's id-keyed gate caches stay hot.
        """
        permutation = self.permutation
        if permutation is None:
            return operation
        entry = self._remap_cache.get(id(operation))
        if entry is not None and entry[0] is operation:
            return entry[1]
        remapped = permute_operation(operation, permutation)
        self._remap_cache[id(operation)] = (operation, remapped)
        return remapped

    def gate_dd(self, operation: Operation) -> Edge:
        """The operation's matrix DD on the full register (cached).

        The operation is remapped through the run's permutation first, so
        strategies keep feeding *original* circuit operations after a
        reorder.
        """
        return self.engine.gate_dd(self.map_operation(operation),
                                   self.num_qubits)

    def apply_matrix(self, matrix: Edge) -> None:
        """One simulation step: ``state <- matrix x state`` (Eq. 1 step)."""
        self.state = self.package.multiply_matrix_vector(matrix, self.state)
        self.statistics.matrix_vector_mults += 1
        if self.track_state_size:
            self.statistics.record_state_size(
                self.package.count_nodes(self.state))
        self.engine.maybe_collect(self)
        if self.trace is not None:
            self._trace_step("matrix")
        self.tick()

    def apply_operation(self, operation: Operation) -> None:
        """One elementary simulation step, via the local-gate fast path.

        When the engine has ``use_local_apply`` enabled the 2x2 gate is
        applied directly to the state DD (no n-qubit gate DD, no full
        matrix-vector multiplication); otherwise this falls back to the
        explicit gate-DD pathway.  Either way it counts as one Eq. 1 step.
        """
        operation = self.map_operation(operation)
        if not self.engine.use_local_apply:
            self.apply_matrix(self.engine.gate_dd(operation,
                                                  self.num_qubits))
            return
        matrix, controls = self.engine.local_gate_spec(operation)
        self.state = self.package.apply_gate(
            self.state, matrix, operation.target, controls)
        self.statistics.matrix_vector_mults += 1
        self.statistics.local_gate_applications += 1
        if self.track_state_size:
            self.statistics.record_state_size(
                self.package.count_nodes(self.state))
        self.engine.maybe_collect(self)
        if self.trace is not None:
            self._trace_step(operation.gate)
        self.tick()

    def _trace_step(self, gate: str) -> None:
        """Emit one ``step`` trace event (see :mod:`repro.simulation.trace`)."""
        package = self.package
        tables = package.tables
        pending = self._pending
        self.trace({
            "event": "step",
            "op_index": self.statistics.matrix_vector_mults - 1,
            "gate": gate,
            "state_nodes": package.count_nodes(self.state),
            "product_nodes": package.count_nodes(pending)
            if pending is not None else 0,
            "live_nodes": package.live_node_count(),
            "apply_gate_hit_rate": round(tables.apply_gate.hit_rate(), 6),
            "mult_mv_hit_rate": round(tables.mult_mv.hit_rate(), 6),
        })

    def combine(self, later: Edge, earlier: Edge) -> Edge:
        """Combine two operation matrices: ``later @ earlier`` (Eq. 2 step).

        Combining is governed like state updates are: a long accumulation
        streak can blow the memory budget without ever touching the state,
        so the governor (and the degradation ladder) runs here too.  The
        fresh product is pinned as a root for the duration -- the strategy
        has not adopted it as pending yet.  A governed *reorder* permutes
        the pinned product in place, so the guard is re-read after the
        collection rather than returning the stale pre-reorder local.
        """
        product = self.package.multiply_matrix_matrix(later, earlier)
        self.statistics.matrix_matrix_mults += 1
        nodes = self.package.count_nodes(product)
        self.last_product_nodes = nodes
        self.statistics.record_matrix_size(nodes)
        self._combine_guard = product
        try:
            self.engine.maybe_collect(self)
            product = self._combine_guard
        finally:
            self._combine_guard = None
        self.tick()
        return product

    def note_operation(self, count: int = 1) -> None:
        self.statistics.operations_applied += count

    def set_pending(self, product: Edge | None) -> None:
        """Tell the engine which product must survive garbage collection."""
        self._pending = product

    def add_root(self, edge: Edge) -> None:
        """Pin an extra DD (e.g. a combined block matrix) across collections."""
        self._extra_roots.append(edge)

    def roots(self) -> list[Edge]:
        roots = [self.state]
        if self._pending is not None:
            roots.append(self._pending)
        if self._combine_guard is not None:
            roots.append(self._combine_guard)
        roots.extend(self._extra_roots)
        return roots


class SimulationEngine:
    """Simulates quantum circuits on decision diagrams.

    Parameters
    ----------
    package:
        The DD package to use; a fresh one is created when omitted.  Sharing
        a package across runs lets results be compared with
        :meth:`SimulationResult.fidelity_with` and re-uses gate DDs.
    gc_node_limit:
        Initial garbage-collection threshold: when the package holds more
        than this many nodes after a simulation step, unreachable nodes are
        collected.  ``None`` disables collection.  Shorthand for passing a
        default :class:`~repro.simulation.memory.MemoryGovernor` with this
        initial limit; ignored when ``governor`` is given explicitly.
    governor:
        Full memory policy: initial limit, geometric threshold growth after
        ineffective collections, optional hard ``max_nodes`` budget (which
        raises :class:`~repro.simulation.memory.MemoryBudgetExceeded`
        instead of grinding).
    use_local_apply:
        When true (the default), elementary operations fed by the sequential
        pathway are applied with :meth:`Package.apply_gate` -- the local-gate
        fast path that never builds the n-qubit gate DD.  Disable to force
        the paper-literal pathway (explicit gate DD + matrix-vector
        multiplication per gate), e.g. for the paper-artifact experiments
        or A/B benchmarking.
    track_state_size:
        When true (the default), the state DD is measured after every
        simulation step so ``peak_state_nodes`` is exact.  That measurement
        traverses the whole state DD -- on a large state driven by cheap
        local gates it can dominate the run, so timing-focused callers
        (the benchmark harness) turn it off; ``final_state_nodes`` stays
        exact either way.
    """

    def __init__(self, package: Package | None = None,
                 gc_node_limit: int | None = 500_000,
                 use_local_apply: bool = True,
                 governor: MemoryGovernor | None = None,
                 track_state_size: bool = True) -> None:
        self.package = package or Package()
        self.governor = governor if governor is not None \
            else MemoryGovernor(node_limit=gc_node_limit)
        self.use_local_apply = use_local_apply
        self.track_state_size = track_state_size
        self._gate_cache: dict[tuple[Operation, int], Edge] = {}
        # 2x2 entries + control map per operation for the local fast path
        # (skips the numpy matrix construction on every application).
        # Keyed by id() -- the operation objects live in the circuit, and
        # the values keep a reference so ids stay valid; hashing a frozen
        # dataclass on every application is measurably slower.
        self._local_gate_cache: dict[int, tuple] = {}

    @property
    def gc_node_limit(self) -> int | None:
        """The governor's *current* collection threshold (legacy alias)."""
        return self.governor.limit

    @gc_node_limit.setter
    def gc_node_limit(self, value: int | None) -> None:
        self.governor.limit = value
        self.governor.initial_limit = value

    # ------------------------------------------------------------------

    def gate_dd(self, operation: Operation, num_qubits: int) -> Edge:
        """Build (or fetch) the full-register matrix DD of an operation."""
        key = (operation, num_qubits)
        cached = self._gate_cache.get(key)
        if cached is None:
            cached = build_gate_dd(self.package, operation.matrix(),
                                   num_qubits, operation.target,
                                   operation.control_map())
            self._gate_cache[key] = cached
        return cached

    def local_gate_spec(self, operation: Operation) -> tuple:
        """``(2x2 entries, control map)`` of an operation, cached."""
        spec = self._local_gate_cache.get(id(operation))
        if spec is None:
            m = operation.matrix()
            matrix = ((complex(m[0][0]), complex(m[0][1])),
                      (complex(m[1][0]), complex(m[1][1])))
            # Hashable controls so Package.apply_gate can memoise the fully
            # prepared gate spec across thousands of applications.
            controls = tuple(sorted(operation.control_map().items()))
            spec = (operation, matrix, controls)
            self._local_gate_cache[id(operation)] = spec
        return spec[1], spec[2]

    def initial_state(self, num_qubits: int, basis_index: int = 0) -> Edge:
        return self.package.basis_state(num_qubits, basis_index)

    def simulate(self, circuit: QuantumCircuit,
                 strategy: SimulationStrategy | None = None,
                 initial_state: Edge | None = None,
                 trace: Callable[[dict], None] | None = None,
                 checkpoint_path: str | None = None,
                 checkpoint_every: int | None = None,
                 degradation: DegradationPolicy | None = None,
                 audit_every: int | None = None,
                 reorder: ReorderPolicy | str | None = None,
                 on_op: Callable[[int], None] | None = None,
                 backend_label: str = ""
                 ) -> SimulationResult:
        """Run ``circuit`` under ``strategy`` (sequential baseline by default).

        ``backend_label`` stamps the producing backend's registry name into
        the run's statistics (and thus every checkpoint snapshot); direct
        engine calls leave it empty.

        ``trace``, when given, receives one dict per simulation step and
        per garbage collection (schema in :mod:`repro.simulation.trace`;
        pass a :class:`~repro.simulation.trace.JsonlTraceSink` to stream
        to disk).  Tracing re-measures the state DD every step, so leave
        it off for timing runs.

        Resilience options (all off by default, with zero overhead on the
        plain path):

        ``checkpoint_path``
            Where checkpoints are written (atomically).  On
            :class:`~repro.simulation.memory.MemoryBudgetExceeded` or
            ``KeyboardInterrupt`` a final checkpoint is written there
            before the exception propagates (the former carries the path
            as ``exc.checkpoint_path``).
        ``checkpoint_every``
            Additionally checkpoint every N completed elementary
            operations.  Requires ``checkpoint_path``.
        ``degradation``
            A :class:`~repro.simulation.memory.DegradationPolicy`: when
            the governor's hard ``max_nodes`` budget is hit, walk the
            fallback ladder (collect, shrink compute tables,
            fidelity-bounded pruning) before giving up.
        ``audit_every``
            Run :meth:`Package.assert_invariants
            <repro.dd.package.Package.assert_invariants>` every K
            completed operations -- structural corruption fails the run
            at the step that caused it instead of corrupting the result.
        ``reorder``
            A :class:`~repro.simulation.reorder.ReorderPolicy` or spec
            string (``"off"``, ``"governor"``, ``"every=K"``).  Governed
            sifting shrinks the state DD mid-run *before* the degradation
            ladder gets to prune; the remaining circuit operations are
            remapped on the fly and the result carries the cumulative
            permutation so measurements stay in logical qubit order.
        ``on_op``
            A cheap per-op-boundary callback ``on_op(op_index)`` -- no DD
            measurement happens on its account (unlike ``trace``).  On
            checkpointed/audited runs it fires once per flattened
            elementary operation with the global operation index; on
            plain runs once per unit of engine work (state update or
            combine) with a monotone counter.  Exceptions it raises
            propagate like in-run failures (budget aborts still write
            their on-failure checkpoint).  This is the attachment point
            for cooperative deadlines, worker heartbeats, and fault
            injection (:mod:`repro.service.faults`).

        Checkpointing/auditing drives the run through the flattened
        operation stream, so :class:`RepeatingBlockStrategy
        <repro.simulation.strategies.RepeatingBlockStrategy>` loses its
        block-reuse optimisation on such runs (results are unchanged).
        """
        strategy = strategy or SequentialStrategy()
        state = initial_state if initial_state is not None \
            else self.initial_state(circuit.num_qubits)
        return self._execute(circuit, strategy, state, trace,
                             checkpoint_path=checkpoint_path,
                             checkpoint_every=checkpoint_every,
                             degradation=degradation,
                             audit_every=audit_every,
                             reorder=reorder_from_spec(reorder),
                             on_op=on_op,
                             backend_label=backend_label)

    def resume(self, checkpoint: Checkpoint | str, circuit: QuantumCircuit,
               trace: Callable[[dict], None] | None = None,
               checkpoint_path: str | None = None,
               checkpoint_every: int | None = None,
               degradation: DegradationPolicy | None = None,
               audit_every: int | None = None,
               reorder: ReorderPolicy | str | None = None,
               on_op: Callable[[int], None] | None = None
               ) -> SimulationResult:
        """Continue a checkpointed run; bit-exact with the uninterrupted run.

        ``checkpoint`` is a :class:`~repro.simulation.checkpoint.Checkpoint`
        or a path to one.  ``circuit`` must be the checkpointed circuit
        (same flattened operation stream); the fingerprint is verified and
        a mismatch raises :class:`ValueError` -- resuming against the
        wrong circuit would silently produce garbage otherwise.

        The strategy is rebuilt from the checkpoint's spec, its mid-run
        state (combining counters, pending product DD) restored, and the
        returned result's statistics continue the checkpointed run's
        accumulated numbers.  When ``degradation`` is given, its cumulative
        fidelity picks up where the checkpointed run left off, so the
        fidelity floor holds across the whole logical run.

        A checkpoint taken after a mid-run reorder carries the cumulative
        qubit permutation; the resumed run restores it and keeps remapping
        the remaining operations, so the replay continues under the sifted
        order (pass ``reorder`` again to keep sifting as well).
        """
        if isinstance(checkpoint, str):
            checkpoint = load_checkpoint(checkpoint)
        fingerprint = circuit_fingerprint(circuit)
        if fingerprint != checkpoint.circuit_fingerprint:
            raise ValueError(
                f"checkpoint does not match circuit {circuit.name!r}: "
                f"fingerprint {checkpoint.circuit_fingerprint[:16]}... was "
                f"taken from a different operation stream than "
                f"{fingerprint[:16]}...")
        strategy = strategy_from_spec(checkpoint.strategy_spec)
        # Replay the checkpointed canonical-weight representatives *before*
        # rebuilding any DD: every weight computed from here on then snaps
        # to the same float it would have in the uninterrupted run, which
        # is what makes resumption bit-exact rather than merely close.
        if checkpoint.complex_table:
            self.package.complex_table.load_state_dict(
                checkpoint.complex_table)
        state = deserialize_dd(self.package, checkpoint.state)
        pending = deserialize_dd(self.package, checkpoint.pending) \
            if checkpoint.pending is not None else None
        base = SimulationStatistics.from_dict(checkpoint.statistics)
        if degradation is not None and checkpoint.degradation is not None:
            degradation.load_state_dict(checkpoint.degradation)
        return self._execute(circuit, strategy, state, trace,
                             checkpoint_path=checkpoint_path,
                             checkpoint_every=checkpoint_every,
                             degradation=degradation,
                             audit_every=audit_every,
                             start_index=checkpoint.op_index,
                             pending=pending,
                             strategy_state=checkpoint.strategy_state,
                             base_statistics=base,
                             reorder=reorder_from_spec(reorder),
                             permutation=checkpoint.permutation,
                             on_op=on_op)

    # ------------------------------------------------------------------

    def _execute(self, circuit: QuantumCircuit, strategy: SimulationStrategy,
                 state: Edge, trace: Callable[[dict], None] | None, *,
                 checkpoint_path: str | None = None,
                 checkpoint_every: int | None = None,
                 degradation: DegradationPolicy | None = None,
                 audit_every: int | None = None,
                 start_index: int = 0,
                 pending: Edge | None = None,
                 strategy_state: dict | None = None,
                 base_statistics: SimulationStatistics | None = None,
                 reorder: ReorderPolicy | None = None,
                 permutation: list[int] | None = None,
                 on_op: Callable[[int], None] | None = None,
                 backend_label: str = ""
                 ) -> SimulationResult:
        """Shared body of :meth:`simulate` and :meth:`resume`."""
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(f"checkpoint_every must be positive, "
                                 f"got {checkpoint_every}")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires checkpoint_path")
        if audit_every is not None and audit_every < 1:
            raise ValueError(f"audit_every must be positive, "
                             f"got {audit_every}")
        statistics = SimulationStatistics(
            strategy=strategy.describe(),
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
            backend=backend_label,
        )
        statistics.resumed_from_op = start_index
        statistics.record_state_size(self.package.count_nodes(state))
        run = _Run(self, circuit.num_qubits, state, statistics, trace,
                   degradation=degradation, reorder=reorder, on_op=on_op)
        run.strategy = strategy
        if permutation is not None:
            expected = list(range(circuit.num_qubits))
            if sorted(permutation) != expected:
                raise ValueError(f"checkpoint permutation {permutation} is "
                                 f"not a permutation of 0.."
                                 f"{circuit.num_qubits - 1}")
            if permutation != expected:
                run.permutation = list(permutation)
        run.op_index = start_index
        counters_before = self.package.counters.snapshot()
        gc_before = self.package.gc_stats.snapshot()
        # Live references for mid-run checkpoints, which must report
        # deltas without waiting for the run to finish.
        run._counters_before = counters_before
        run._gc_before = gc_before
        # Checkpointing/auditing (and any resume) needs a well-defined
        # position in the flattened operation stream; plain runs keep the
        # strategy's own execute() fast path.
        resilient = (checkpoint_path is not None or audit_every is not None
                     or start_index > 0 or pending is not None
                     or bool(strategy_state))
        # DDs are acyclic (nodes only reference lower levels), so reference
        # counting reclaims everything and the cyclic collector only adds
        # per-allocation overhead to this very allocation-heavy loop.
        # Pausing it is worth ~20% wall-clock on sequential simulation.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        started = time.perf_counter()
        run._started = started
        try:
            if resilient:
                self._run_ops(run, strategy, circuit,
                              start_index=start_index, pending=pending,
                              strategy_state=strategy_state,
                              checkpoint_path=checkpoint_path,
                              checkpoint_every=checkpoint_every,
                              audit_every=audit_every)
            else:
                strategy.execute(run, circuit)
        finally:
            statistics.wall_time_seconds = time.perf_counter() - started
            if gc_was_enabled:
                gc.enable()
        statistics.counters = self.package.counters.delta(counters_before)
        statistics.gc = self.package.gc_stats.delta(gc_before)
        # A state that finished on the dense-block fast path materialises
        # back into its canonical DD here, outside the timed region --
        # callers always receive a DD-backed state.
        run.state = self.package.solidify(run.state)
        statistics.final_state_nodes = self.package.count_nodes(run.state)
        self._stamp_coverage_signals(statistics)
        if base_statistics is not None:
            base_statistics.merge(statistics)
            statistics = base_statistics
        return SimulationResult(state=run.state, package=self.package,
                                statistics=statistics,
                                permutation=run.permutation)

    def _stamp_coverage_signals(self, statistics: SimulationStatistics
                                ) -> None:
        """Fold cheap package-level signals into the run's statistics.

        The coverage-guided fuzzer (:mod:`repro.verification.coverage`)
        buckets these to decide whether a case reached engine behaviour no
        earlier case did.  The numbers are cumulative per package, so they
        are per-run only when the engine owns a fresh package (which is how
        every backend adapter and the plan executor build engines).
        """
        cache = self.package.cache_stats()
        rates: dict[str, float] = {}
        for name, table in cache.get("compute", {}).items():
            if table.get("lookups"):
                rates[name] = table["hit_rate"]
        complex_stats = cache.get("complex", {})
        if complex_stats.get("hits") or complex_stats.get("misses"):
            rates["complex"] = complex_stats["hit_rate"]
        statistics.cache_hit_rates = rates
        dense = cache.get("kernel", {}).get("dense", {})
        statistics.dense_cutovers = int(dense.get("cutovers") or 0)

    def _run_ops(self, run: _Run, strategy: SimulationStrategy,
                 circuit: QuantumCircuit, *, start_index: int,
                 pending: Edge | None, strategy_state: dict | None,
                 checkpoint_path: str | None, checkpoint_every: int | None,
                 audit_every: int | None) -> None:
        """Resilient driver: feed the flattened operation stream.

        After every completed ``feed`` the run records a *boundary
        snapshot* -- ``(op_index, state, pending, strategy state)`` -- so
        an exception anywhere (including mid-multiplication on
        ``KeyboardInterrupt``) can still write a checkpoint from the last
        consistent boundary.  The snapshot holds plain edge references;
        even if a later degradation pass prunes the state and collects,
        the referenced nodes stay serialisable (nodes are immutable and
        serialisation never consults the unique tables).
        """
        operations = list(circuit.operations())
        total = len(operations)
        if start_index > total:
            raise ValueError(
                f"checkpoint op_index {start_index} exceeds the circuit's "
                f"{total} elementary operations -- wrong circuit?")
        run._total_ops = total
        run._fingerprint = circuit_fingerprint(circuit)
        # This driver fires the per-op hook itself, once per flattened
        # elementary operation with the global index -- fault schedules
        # and resumed runs then agree on what "op K" means.
        run._tick_in_apply = False
        strategy.begin(run)
        if strategy_state:
            strategy.load_state_dict(strategy_state)
        if pending is not None:
            strategy.restore_pending(run, pending)
        self._note_boundary(run, strategy)
        package = self.package
        try:
            for index in range(start_index, total):
                strategy.feed(run, operations[index])
                run.op_index = index + 1
                self._note_boundary(run, strategy)
                done = index + 1 - start_index
                if audit_every is not None and done % audit_every == 0:
                    package.assert_invariants(run.roots())
                    run.statistics.audits_run += 1
                if (checkpoint_every is not None and index + 1 < total
                        and done % checkpoint_every == 0):
                    self._write_checkpoint(run, strategy, circuit,
                                           checkpoint_path,
                                           reason="periodic")
                # after the periodic checkpoint, so a checkpoint-damage
                # fault scheduled at this boundary sees it on disk
                if run.on_op is not None:
                    run.on_op(index)
            strategy.flush(run)
            run.op_index = total
            self._note_boundary(run, strategy)
            if audit_every is not None:
                package.assert_invariants(run.roots())
                run.statistics.audits_run += 1
        except (MemoryBudgetExceeded, KeyboardInterrupt) as exc:
            if checkpoint_path is not None:
                path = self._write_checkpoint(
                    run, strategy, circuit, checkpoint_path,
                    reason=type(exc).__name__)
                if isinstance(exc, MemoryBudgetExceeded):
                    exc.checkpoint_path = path
            raise

    @staticmethod
    def _note_boundary(run: _Run, strategy: SimulationStrategy) -> None:
        # Statistics are snapshotted per boundary too: a checkpoint written
        # after a mid-feed exception must not count the interrupted (and
        # later replayed) operation, or resumed totals double-count it.
        run._last_good = (run.op_index, run.state, run._pending,
                          strategy.state_dict(),
                          run.statistics.as_dict(),
                          list(run.permutation)
                          if run.permutation is not None else None)

    def _write_checkpoint(self, run: _Run, strategy: SimulationStrategy,
                          circuit: QuantumCircuit, path: str,
                          reason: str) -> str:
        """Serialise the last consistent boundary to ``path`` (atomic)."""
        (op_index, state, pending, strategy_state, stats_dict,
         permutation) = run._last_good
        package = self.package
        # Dense blocks are a transient in-run representation; checkpoints
        # always store the canonical DD form.
        state = package.solidify(state)
        pending = package.solidify(pending) if pending is not None else None
        # Statistics snapshot with live counter/gc/time deltas filled in
        # (the run's own record is only finalised when _execute returns).
        snapshot = SimulationStatistics.from_dict(stats_dict)
        snapshot.counters = package.counters.delta(run._counters_before)
        snapshot.gc = package.gc_stats.delta(run._gc_before)
        snapshot.wall_time_seconds = time.perf_counter() - run._started
        snapshot.checkpoints_written = run.statistics.checkpoints_written + 1
        checkpoint = Checkpoint(
            circuit_name=circuit.name,
            circuit_fingerprint=run._fingerprint,
            num_qubits=circuit.num_qubits,
            op_index=op_index,
            total_ops=run._total_ops,
            strategy_spec=strategy.spec(),
            strategy_state=strategy_state,
            state=serialize_dd(state),
            pending=serialize_dd(pending) if pending is not None else None,
            statistics=snapshot.as_dict(),
            complex_table=package.complex_table.state_dict(),
            degradation=run.degradation.state_dict()
            if run.degradation is not None else None,
            governor=self.governor.stats(),
            permutation=permutation,
            reason=reason,
        )
        save_checkpoint(checkpoint, path)
        run.statistics.checkpoints_written += 1
        if run.trace is not None:
            run.trace({
                "event": "checkpoint",
                "op_index": op_index,
                "path": path,
                "reason": reason,
                "state_nodes": package.count_nodes(state),
            })
        return path

    # ------------------------------------------------------------------

    def maybe_collect(self, run: _Run) -> None:
        """Garbage-collect when the governor's threshold is exceeded.

        After a collection the governor inspects the outcome: if the
        *surviving* (fully reachable) working set still exceeds the
        threshold, the threshold grows geometrically so the next steps do
        not re-run a futile mark-sweep -- the fix for the thrash regime
        where a large mostly-reachable package paid a full collection plus
        compute-table wipe on every single step.  When the hard
        ``max_nodes`` budget is breached and the run carries a
        :class:`~repro.simulation.memory.DegradationPolicy`, the
        degradation ladder runs before :meth:`MemoryGovernor.check_budget`
        gets to raise.

        When the run carries a :class:`ReorderPolicy`, governed sifting
        slots in *between* collection and degradation: a cheaper variable
        order is tried before anything lossy (pruning) or destructive
        (budget abort) happens.  Governor pressure means the live working
        set is over the hard ``max_nodes`` budget after a collection, or
        the collection was futile (the threshold had to grow).
        """
        governor = self.governor
        package = self.package
        live = package.live_node_count()
        collection_grew = False
        if governor.should_collect(live):
            live = self._collect(run)
            collection_grew = run._collection_grew
        policy = run.reorder
        if policy is not None:
            pressure = collection_grew or (
                governor.max_nodes is not None and live > governor.max_nodes)
            if policy.should_reorder(run.statistics.operations_applied,
                                     pressure):
                reason = "cadence" if policy.mode == "every" else "pressure"
                live = self._reorder(run, reason)
        if (run.degradation is not None and governor.max_nodes is not None
                and live > governor.max_nodes):
            live = self._degrade(run, live)
        governor.check_budget(live)

    def _collect(self, run: _Run) -> int:
        """One governed mark-sweep; returns the surviving live-node count."""
        package = self.package
        governor = self.governor
        roots = run.roots()
        roots.extend(self._gate_cache.values())
        gc_before = package.gc_stats.snapshot() \
            if run.trace is not None else None
        flat_before = package.gc_stats.flat_slots_freed
        freed = package.garbage_collect(roots)
        live = package.live_node_count()
        run._collection_grew = governor.note_collection(
            freed, live,
            flat_freed=package.gc_stats.flat_slots_freed - flat_before)
        if run.trace is not None:
            delta = package.gc_stats.delta(gc_before)
            run.trace({
                "event": "gc",
                "op_index": run.statistics.matrix_vector_mults - 1,
                "nodes_freed": freed,
                "flat_slots_freed": delta.flat_slots_freed,
                "surviving_nodes": live,
                "compute_entries_dropped": delta.compute_entries_dropped,
                "pause_seconds": round(delta.pause_seconds, 6),
                "limit": governor.limit,
            })
        return live

    def _materialize(self, edge):
        """A recursive-path :class:`Edge` for any state representation.

        Reordering walks the object node graph, so dense blocks are
        solidified and flat iterative edges materialised into plain edges
        first; the run then continues on the recursive path (correct, just
        slower) under the new order -- the same choice the degradation
        ladder's pruning rung makes.
        """
        edge = self.package.solidify(edge)
        if type(edge) is FlatEdge:
            edge = Edge(edge.node, edge.weight)
        return edge

    def _permute_matrix(self, run: _Run, edge: Edge | None,
                        permutation: list[int]) -> Edge | None:
        """Apply a level permutation to a pinned (matrix) DD, if any."""
        if edge is None:
            return None
        edge = self._materialize(edge)
        return permute_qubits(self.package, edge, permutation,
                              size=run.num_qubits)

    def _reorder(self, run: _Run, reason: str) -> int:
        """Sift the state DD and rebase the run onto the new order.

        The mechanics, in order: the state is materialised onto the
        recursive path (sifting walks object nodes), sifted, and every
        other in-flight DD -- the pending accumulated product, a product
        pinned mid-:meth:`_Run.combine` -- is permuted to match.  The
        run's cumulative permutation is composed with the step
        permutation, the remap and gate caches are dropped (they are
        keyed on the *old* levels and would otherwise pin old-order DDs),
        the strategy's :meth:`~repro.simulation.strategies
        .SimulationStrategy.on_reorder` hook re-adopts the permuted
        products, and a collection reclaims the old-order diagrams.
        Returns the post-reorder live node count.
        """
        policy = run.reorder
        package = self.package
        run.state = self._materialize(run.state)
        nodes_before = package.count_nodes(run.state)
        ops_done = run.statistics.operations_applied
        if nodes_before < policy.min_nodes:
            # Too small to be worth the bookkeeping; still note the
            # attempt so the cadence/cooldown clock advances.
            policy.note_sift(ops_done, nodes_before, nodes_before)
            return package.live_node_count()
        run.state, step = sift(package, run.state,
                               max_growth=policy.max_growth,
                               num_qubits=run.num_qubits)
        nodes_after = package.count_nodes(run.state)
        policy.note_sift(ops_done, nodes_before, nodes_after)
        identity_step = step == list(range(run.num_qubits))
        if not identity_step:
            run._pending = self._permute_matrix(run, run._pending, step)
            if run._combine_guard is not None:
                run._combine_guard = self._permute_matrix(
                    run, run._combine_guard, step)
                run.last_product_nodes = package.count_nodes(
                    run._combine_guard)
            base = run.permutation or list(range(run.num_qubits))
            total = [step[base[q]] for q in range(run.num_qubits)]
            run.permutation = None \
                if total == list(range(run.num_qubits)) else total
            run._remap_cache.clear()
            # Gate caches are keyed by the *remapped* operations; stale
            # entries would pin DDs built for the old order forever.
            self.clear_caches()
            self._notify_reorder(run)
        run.statistics.reorders += 1
        run.statistics.reorder_nodes_saved += nodes_before - nodes_after
        live = self._collect(run)
        if run.trace is not None:
            run.trace({
                "event": "reorder",
                "op_index": run.statistics.matrix_vector_mults - 1,
                "reason": reason,
                "nodes_before": nodes_before,
                "nodes_after": nodes_after,
                "permutation": list(run.permutation)
                if run.permutation is not None else None,
                "live_nodes": live,
            })
        return live

    def _notify_reorder(self, run: _Run) -> None:
        """Tell the strategy the run was rebased onto a new variable order.

        Accumulating strategies hold their pending product DD privately;
        after :meth:`_reorder` permutes ``run._pending`` they must re-adopt
        it (:meth:`~repro.simulation.strategies.SimulationStrategy
        .on_reorder`), or they would keep combining gates built under the
        new order into a product built under the old one.  Kept as a
        separate method so the fuzzing harness can plant exactly that bug
        (:class:`repro.verification.plans.BrokenReorderEngine`).
        """
        if run.strategy is not None:
            run.strategy.on_reorder(run)

    def _degrade(self, run: _Run, live: int) -> int:
        """Walk the degradation ladder; returns the final live-node count.

        Every rung frees only *rebuildable or negligible* data: a forced
        collection, then compute-table shrinking plus gate-cache clearing
        (pure caches), then fidelity-bounded pruning of the state DD --
        the only lossy step, bounded by the policy's cumulative fidelity
        floor.  When the ladder cannot get under budget the caller's
        ``check_budget`` raises as before (and the resilient driver writes
        a checkpoint on the way out).
        """
        policy = run.degradation
        package = self.package
        budget = self.governor.max_nodes
        # Rung 1: force a collection even below the GC threshold.
        before = live
        live = self._collect(run)
        self._record_degradation(run, {
            "action": "collect",
            "nodes_freed": before - live,
            "live_nodes": live,
        })
        if live <= budget:
            return live
        # Rung 2 (once per run): shrink every compute table and drop the
        # engine's gate-DD caches, then re-collect the newly unpinned nodes.
        if not policy.tables_shrunk:
            policy.tables_shrunk = True
            dropped = 0
            for cache in package.tables.compute_tables().values():
                dropped += cache.resize(policy.compute_table_slots)
            self.clear_caches()
            before = live
            live = self._collect(run)
            self._record_degradation(run, {
                "action": "shrink-tables",
                "slots": policy.compute_table_slots,
                "compute_entries_dropped": dropped,
                "nodes_freed": before - live,
                "live_nodes": live,
            })
            if live <= budget:
                return live
        # Rung 3: fidelity-bounded pruning of the state DD.
        state_nodes = package.count_nodes(run.state)
        target = max(1, int(budget * policy.prune_target_fraction))
        if state_nodes > target and policy.allows_prune():
            run.state = package.solidify(run.state)
            if type(run.state) is FlatEdge:
                # Pruning operates on object DDs; materialise the flat
                # state (the run continues on the recursive path, which
                # is correct -- just slower -- for the degraded remainder).
                run.state = Edge(run.state.node, run.state.weight)
            # The per-call floor is the global floor divided by what the
            # previous prunes already spent.
            floor = min(1.0, policy.fidelity_floor / policy.cumulative_fidelity)
            result = prune_to_node_budget(
                package, run.state, target, min_fidelity=floor,
                initial_budget=policy.prune_initial_budget,
                growth=policy.prune_growth)
            if result.edges_cut > 0:
                run.state = result.state
                live = self._collect(run)
                self._record_degradation(run, {
                    "action": "prune",
                    "fidelity": result.fidelity,
                    "edges_cut": result.edges_cut,
                    "state_nodes_before": result.nodes_before,
                    "state_nodes_after": result.nodes_after,
                    "live_nodes": live,
                })
        return live

    def _record_degradation(self, run: _Run, action: dict) -> None:
        """Record one ladder action in policy, statistics, and trace."""
        run.degradation.record(dict(action))
        run.statistics.record_degradation(dict(action))
        if run.trace is not None:
            event = {"event": "degrade",
                     "op_index": run.statistics.matrix_vector_mults - 1}
            event.update(action)
            event["cumulative_fidelity"] = \
                run.degradation.cumulative_fidelity
            run.trace(event)

    def clear_caches(self) -> None:
        """Drop the engine's gate caches (package caches are untouched).

        Clears both the full-register gate-DD cache and the local-gate
        spec cache; the latter is keyed by ``id(operation)`` and pins the
        operation objects, so a long-lived engine fed many circuits would
        otherwise grow it without bound.
        """
        self._gate_cache.clear()
        self._local_gate_cache.clear()
