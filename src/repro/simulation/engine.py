"""The simulation engine.

Owns the DD package, builds gate DDs (with caching -- a circuit applying the
same Hadamard a thousand times builds its DD once), drives a
:class:`~repro.simulation.strategies.SimulationStrategy` over a circuit, and
records statistics.  Memory is governed by a
:class:`~repro.simulation.memory.MemoryGovernor`: when the package's unique
tables outgrow the governor's threshold, everything not reachable from the
run's roots (state, pending product, cached gate and block DDs) is freed --
and when a collection turns out to be futile (the working set itself has
outgrown the threshold) the governor grows the threshold instead of
re-collecting every step.  An opt-in ``trace`` callback streams per-step
telemetry (see :mod:`repro.simulation.trace`).
"""

from __future__ import annotations

import gc
import time
from typing import Callable

from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..dd.edge import Edge
from ..dd.gate_building import build_gate_dd
from ..dd.package import Package
from .memory import MemoryGovernor
from .result import SimulationResult
from .statistics import SimulationStatistics
from .strategies import SequentialStrategy, SimulationStrategy

__all__ = ["SimulationEngine"]


class _Run:
    """Mutable state of one simulation run, shared with the strategy."""

    def __init__(self, engine: "SimulationEngine", num_qubits: int,
                 state: Edge, statistics: SimulationStatistics,
                 trace: Callable[[dict], None] | None = None) -> None:
        self.engine = engine
        self.package = engine.package
        self.num_qubits = num_qubits
        self.state = state
        self.statistics = statistics
        self.trace = trace
        self.track_state_size = engine.track_state_size
        #: node count of the last product returned by :meth:`combine` --
        #: lets size-bounded strategies reuse the measurement instead of
        #: re-counting the (growing) product DD on every feed
        self.last_product_nodes = 0
        self._pending: Edge | None = None
        self._extra_roots: list[Edge] = []

    # -- operations the strategies use ---------------------------------

    def gate_dd(self, operation: Operation) -> Edge:
        """The operation's matrix DD on the full register (cached)."""
        return self.engine.gate_dd(operation, self.num_qubits)

    def apply_matrix(self, matrix: Edge) -> None:
        """One simulation step: ``state <- matrix x state`` (Eq. 1 step)."""
        self.state = self.package.multiply_matrix_vector(matrix, self.state)
        self.statistics.matrix_vector_mults += 1
        if self.track_state_size:
            self.statistics.record_state_size(
                self.package.count_nodes(self.state))
        self.engine.maybe_collect(self)
        if self.trace is not None:
            self._trace_step("matrix")

    def apply_operation(self, operation: Operation) -> None:
        """One elementary simulation step, via the local-gate fast path.

        When the engine has ``use_local_apply`` enabled the 2x2 gate is
        applied directly to the state DD (no n-qubit gate DD, no full
        matrix-vector multiplication); otherwise this falls back to the
        explicit gate-DD pathway.  Either way it counts as one Eq. 1 step.
        """
        if not self.engine.use_local_apply:
            self.apply_matrix(self.gate_dd(operation))
            return
        matrix, controls = self.engine.local_gate_spec(operation)
        self.state = self.package.apply_gate(
            self.state, matrix, operation.target, controls)
        self.statistics.matrix_vector_mults += 1
        self.statistics.local_gate_applications += 1
        if self.track_state_size:
            self.statistics.record_state_size(
                self.package.count_nodes(self.state))
        self.engine.maybe_collect(self)
        if self.trace is not None:
            self._trace_step(operation.gate)

    def _trace_step(self, gate: str) -> None:
        """Emit one ``step`` trace event (see :mod:`repro.simulation.trace`)."""
        package = self.package
        tables = package.tables
        pending = self._pending
        self.trace({
            "event": "step",
            "op_index": self.statistics.matrix_vector_mults - 1,
            "gate": gate,
            "state_nodes": package.count_nodes(self.state),
            "product_nodes": package.count_nodes(pending)
            if pending is not None else 0,
            "live_nodes": package.live_node_count(),
            "apply_gate_hit_rate": round(tables.apply_gate.hit_rate(), 6),
            "mult_mv_hit_rate": round(tables.mult_mv.hit_rate(), 6),
        })

    def combine(self, later: Edge, earlier: Edge) -> Edge:
        """Combine two operation matrices: ``later @ earlier`` (Eq. 2 step)."""
        product = self.package.multiply_matrix_matrix(later, earlier)
        self.statistics.matrix_matrix_mults += 1
        nodes = self.package.count_nodes(product)
        self.last_product_nodes = nodes
        self.statistics.record_matrix_size(nodes)
        return product

    def note_operation(self, count: int = 1) -> None:
        self.statistics.operations_applied += count

    def set_pending(self, product: Edge | None) -> None:
        """Tell the engine which product must survive garbage collection."""
        self._pending = product

    def add_root(self, edge: Edge) -> None:
        """Pin an extra DD (e.g. a combined block matrix) across collections."""
        self._extra_roots.append(edge)

    def roots(self) -> list[Edge]:
        roots = [self.state]
        if self._pending is not None:
            roots.append(self._pending)
        roots.extend(self._extra_roots)
        return roots


class SimulationEngine:
    """Simulates quantum circuits on decision diagrams.

    Parameters
    ----------
    package:
        The DD package to use; a fresh one is created when omitted.  Sharing
        a package across runs lets results be compared with
        :meth:`SimulationResult.fidelity_with` and re-uses gate DDs.
    gc_node_limit:
        Initial garbage-collection threshold: when the package holds more
        than this many nodes after a simulation step, unreachable nodes are
        collected.  ``None`` disables collection.  Shorthand for passing a
        default :class:`~repro.simulation.memory.MemoryGovernor` with this
        initial limit; ignored when ``governor`` is given explicitly.
    governor:
        Full memory policy: initial limit, geometric threshold growth after
        ineffective collections, optional hard ``max_nodes`` budget (which
        raises :class:`~repro.simulation.memory.MemoryBudgetExceeded`
        instead of grinding).
    use_local_apply:
        When true (the default), elementary operations fed by the sequential
        pathway are applied with :meth:`Package.apply_gate` -- the local-gate
        fast path that never builds the n-qubit gate DD.  Disable to force
        the paper-literal pathway (explicit gate DD + matrix-vector
        multiplication per gate), e.g. for the paper-artifact experiments
        or A/B benchmarking.
    track_state_size:
        When true (the default), the state DD is measured after every
        simulation step so ``peak_state_nodes`` is exact.  That measurement
        traverses the whole state DD -- on a large state driven by cheap
        local gates it can dominate the run, so timing-focused callers
        (the benchmark harness) turn it off; ``final_state_nodes`` stays
        exact either way.
    """

    def __init__(self, package: Package | None = None,
                 gc_node_limit: int | None = 500_000,
                 use_local_apply: bool = True,
                 governor: MemoryGovernor | None = None,
                 track_state_size: bool = True) -> None:
        self.package = package or Package()
        self.governor = governor if governor is not None \
            else MemoryGovernor(node_limit=gc_node_limit)
        self.use_local_apply = use_local_apply
        self.track_state_size = track_state_size
        self._gate_cache: dict[tuple[Operation, int], Edge] = {}
        # 2x2 entries + control map per operation for the local fast path
        # (skips the numpy matrix construction on every application).
        # Keyed by id() -- the operation objects live in the circuit, and
        # the values keep a reference so ids stay valid; hashing a frozen
        # dataclass on every application is measurably slower.
        self._local_gate_cache: dict[int, tuple] = {}

    @property
    def gc_node_limit(self) -> int | None:
        """The governor's *current* collection threshold (legacy alias)."""
        return self.governor.limit

    @gc_node_limit.setter
    def gc_node_limit(self, value: int | None) -> None:
        self.governor.limit = value
        self.governor.initial_limit = value

    # ------------------------------------------------------------------

    def gate_dd(self, operation: Operation, num_qubits: int) -> Edge:
        """Build (or fetch) the full-register matrix DD of an operation."""
        key = (operation, num_qubits)
        cached = self._gate_cache.get(key)
        if cached is None:
            cached = build_gate_dd(self.package, operation.matrix(),
                                   num_qubits, operation.target,
                                   operation.control_map())
            self._gate_cache[key] = cached
        return cached

    def local_gate_spec(self, operation: Operation) -> tuple:
        """``(2x2 entries, control map)`` of an operation, cached."""
        spec = self._local_gate_cache.get(id(operation))
        if spec is None:
            m = operation.matrix()
            matrix = ((complex(m[0][0]), complex(m[0][1])),
                      (complex(m[1][0]), complex(m[1][1])))
            # Hashable controls so Package.apply_gate can memoise the fully
            # prepared gate spec across thousands of applications.
            controls = tuple(sorted(operation.control_map().items()))
            spec = (operation, matrix, controls)
            self._local_gate_cache[id(operation)] = spec
        return spec[1], spec[2]

    def initial_state(self, num_qubits: int, basis_index: int = 0) -> Edge:
        return self.package.basis_state(num_qubits, basis_index)

    def simulate(self, circuit: QuantumCircuit,
                 strategy: SimulationStrategy | None = None,
                 initial_state: Edge | None = None,
                 trace: Callable[[dict], None] | None = None
                 ) -> SimulationResult:
        """Run ``circuit`` under ``strategy`` (sequential baseline by default).

        ``trace``, when given, receives one dict per simulation step and
        per garbage collection (schema in :mod:`repro.simulation.trace`;
        pass a :class:`~repro.simulation.trace.JsonlTraceSink` to stream
        to disk).  Tracing re-measures the state DD every step, so leave
        it off for timing runs.
        """
        strategy = strategy or SequentialStrategy()
        state = initial_state if initial_state is not None \
            else self.initial_state(circuit.num_qubits)
        statistics = SimulationStatistics(
            strategy=strategy.describe(),
            circuit_name=circuit.name,
            num_qubits=circuit.num_qubits,
        )
        statistics.record_state_size(self.package.count_nodes(state))
        run = _Run(self, circuit.num_qubits, state, statistics, trace)
        counters_before = self.package.counters.snapshot()
        gc_before = self.package.gc_stats.snapshot()
        # DDs are acyclic (nodes only reference lower levels), so reference
        # counting reclaims everything and the cyclic collector only adds
        # per-allocation overhead to this very allocation-heavy loop.
        # Pausing it is worth ~20% wall-clock on sequential simulation.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        started = time.perf_counter()
        try:
            strategy.execute(run, circuit)
        finally:
            statistics.wall_time_seconds = time.perf_counter() - started
            if gc_was_enabled:
                gc.enable()
        statistics.counters = self.package.counters.delta(counters_before)
        statistics.gc = self.package.gc_stats.delta(gc_before)
        statistics.final_state_nodes = self.package.count_nodes(run.state)
        return SimulationResult(state=run.state, package=self.package,
                                statistics=statistics)

    # ------------------------------------------------------------------

    def maybe_collect(self, run: _Run) -> None:
        """Garbage-collect when the governor's threshold is exceeded.

        After a collection the governor inspects the outcome: if the
        *surviving* (fully reachable) working set still exceeds the
        threshold, the threshold grows geometrically so the next steps do
        not re-run a futile mark-sweep -- the fix for the thrash regime
        where a large mostly-reachable package paid a full collection plus
        compute-table wipe on every single step.  The hard ``max_nodes``
        budget (if any) is enforced afterwards.
        """
        governor = self.governor
        package = self.package
        live = package.live_node_count()
        if governor.should_collect(live):
            roots = run.roots()
            roots.extend(self._gate_cache.values())
            gc_before = package.gc_stats.snapshot() \
                if run.trace is not None else None
            freed = package.garbage_collect(roots)
            live = package.live_node_count()
            governor.note_collection(freed, live)
            if run.trace is not None:
                delta = package.gc_stats.delta(gc_before)
                run.trace({
                    "event": "gc",
                    "op_index": run.statistics.matrix_vector_mults - 1,
                    "nodes_freed": freed,
                    "surviving_nodes": live,
                    "compute_entries_dropped": delta.compute_entries_dropped,
                    "pause_seconds": round(delta.pause_seconds, 6),
                    "limit": governor.limit,
                })
        governor.check_budget(live)

    def clear_caches(self) -> None:
        """Drop the engine's gate caches (package caches are untouched).

        Clears both the full-register gate-DD cache and the local-gate
        spec cache; the latter is keyed by ``id(operation)`` and pins the
        operation objects, so a long-lived engine fed many circuits would
        otherwise grow it without bound.
        """
        self._gate_cache.clear()
        self._local_gate_cache.clear()
