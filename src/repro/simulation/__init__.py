"""DD-based circuit simulation: engine, strategies, instrumentation.

The strategies implement the paper's Section IV:

* :class:`SequentialStrategy` -- one matrix-vector multiplication per gate
  (the state-of-the-art baseline, Eq. 1).
* :class:`KOperationsStrategy` / :class:`MaxSizeStrategy` -- the general
  combining strategies (Sec. IV-A, evaluated in Fig. 8 / Fig. 9).
* :class:`RepeatingBlockStrategy` -- *DD-repeating* for circuits with
  repeated blocks (Sec. IV-B, Table I).

The *DD-construct* strategy (Sec. IV-B, Table II) lives with the algorithm
that needs it: see :mod:`repro.algorithms.shor`.
"""

from .checkpoint import (CHECKPOINT_FORMAT, Checkpoint, CheckpointError,
                         circuit_fingerprint, load_checkpoint,
                         save_checkpoint)
from .density import (DensityMatrixSimulator, amplitude_damping_kraus,
                      bit_flip_kraus, depolarizing_kraus, phase_flip_kraus)
from .engine import SimulationEngine
from .memory import DegradationPolicy, MemoryBudgetExceeded, MemoryGovernor
from .noise import (NoiseModel, noisy_counts, noisy_trajectory_circuit,
                    simulate_trajectory)
from .reorder import ReorderPolicy, reorder_from_spec
from .result import SimulationResult
from .statistics import SimulationStatistics
from .trace import JsonlTraceSink, load_trace, trace_summary
from .strategies import (AdaptiveStrategy, KOperationsStrategy,
                         MaxSizeStrategy, RepeatingBlockStrategy,
                         SequentialStrategy, SimulationStrategy,
                         strategy_from_spec)
from .sweep import (CellResult, SweepReport, SweepRunner, SweepTask,
                    task_seed)

__all__ = [
    "AdaptiveStrategy",
    "CHECKPOINT_FORMAT",
    "Checkpoint",
    "CheckpointError",
    "circuit_fingerprint",
    "DegradationPolicy",
    "DensityMatrixSimulator",
    "JsonlTraceSink",
    "KOperationsStrategy",
    "load_checkpoint",
    "MemoryBudgetExceeded",
    "MemoryGovernor",
    "save_checkpoint",
    "load_trace",
    "trace_summary",
    "amplitude_damping_kraus",
    "bit_flip_kraus",
    "depolarizing_kraus",
    "phase_flip_kraus",
    "MaxSizeStrategy",
    "NoiseModel",
    "noisy_counts",
    "noisy_trajectory_circuit",
    "simulate_trajectory",
    "ReorderPolicy",
    "reorder_from_spec",
    "RepeatingBlockStrategy",
    "SequentialStrategy",
    "SimulationEngine",
    "SimulationResult",
    "SimulationStatistics",
    "SimulationStrategy",
    "strategy_from_spec",
    "CellResult",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "task_seed",
]
