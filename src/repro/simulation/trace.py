"""Per-step simulation traces: records, JSONL sink, summarisation.

A trace is the run-time telemetry the paper's plots are made of: how the
state DD grows step by step, where the caches stop hitting, and when the
memory manager intervened.  :meth:`SimulationEngine.simulate
<repro.simulation.engine.SimulationEngine.simulate>` accepts any callable
as ``trace``; each event is a flat JSON-serialisable dict.

Event schema (all events carry ``event`` and ``op_index``):

``step``
    One Eq. 1 state update.  Fields: ``op_index`` (0-based index of the
    state update within the run), ``gate`` (name, or ``"matrix"`` for a
    combined product), ``state_nodes``, ``product_nodes`` (pending combined
    product, 0 when none), ``live_nodes`` (package-wide interned nodes),
    ``apply_gate_hit_rate`` / ``mult_mv_hit_rate`` (cumulative compute-table
    hit rates).
``gc``
    One garbage collection.  Fields: ``op_index``, ``nodes_freed``,
    ``surviving_nodes``, ``compute_entries_dropped``, ``pause_seconds``,
    ``limit`` (the governor's threshold after the collection -- grows after
    an ineffective one).
``degrade``
    One degradation-ladder action under memory pressure.  Fields:
    ``op_index``, ``action`` (``collect`` | ``shrink-tables`` | ``prune``),
    ``live_nodes``, ``cumulative_fidelity``, plus per-action detail
    (``nodes_freed``; ``slots`` / ``compute_entries_dropped``;
    ``fidelity`` / ``edges_cut`` / ``state_nodes_before`` /
    ``state_nodes_after``).
``checkpoint``
    One checkpoint written (periodic or on-failure).  Fields:
    ``op_index`` (next flattened operation to apply), ``path``,
    ``reason`` (``periodic``, or the exception class name), ``state_nodes``.
``reorder``
    One mid-run variable reorder (sift).  Fields: ``op_index``,
    ``reason`` (``pressure`` for governor-triggered, ``cadence`` for
    every-K), ``nodes_before`` / ``nodes_after`` (state DD size around the
    sift), ``permutation`` (cumulative qubit-to-level map, ``null`` when
    back to identity), ``live_nodes`` (after the post-sift collection).

The job supervisor (:mod:`repro.service.supervisor`) writes its events to
the same JSONL streams.  Supervision events carry ``job`` and ``time``
instead of ``op_index``:

``job``
    A job reached a notable state.  Fields: ``job``, ``action``
    (``running`` / ``done``), ``attempt``; ``done`` events add
    ``resumed_from_op``.
``lease``
    Lease lifecycle.  Fields: ``job``, ``action`` (``acquired`` /
    ``expired`` / ``reclaimed``), plus ``attempt`` / ``pid`` /
    ``lease_seconds`` (and ``heartbeat_age`` on expiry).
``retry``
    A failed attempt was re-queued with backoff.  Fields: ``job``,
    ``attempt``, ``error`` (type name), ``backoff_seconds``,
    ``next_attempt``.
``quarantine``
    Retries exhausted.  Fields: ``job``, ``attempts``, ``errors`` (the
    error-type chain, one entry per attempt).

:class:`JsonlTraceSink` appends events to a JSON-Lines file;
:func:`trace_summary` condenses a list of events (or a JSONL file) back
into aggregate numbers for reports.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

__all__ = ["JsonlTraceSink", "load_trace", "trace_summary"]


class JsonlTraceSink:
    """Callable trace consumer that appends one JSON object per line.

    Usable as a context manager::

        with JsonlTraceSink("run.jsonl") as sink:
            engine.simulate(circuit, trace=sink)
    """

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.events_written = 0

    def __call__(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=False) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not valid JSON "
                                 f"({exc})") from None
    return events


def trace_summary(events: Iterable[dict] | str) -> dict:
    """Aggregate a trace into headline numbers.

    ``events`` may be an iterable of event dicts or a JSONL file path.
    Returns steps, peak/final state size, GC activity, and the final
    cumulative cache hit rates -- the digest the analysis layer renders.
    """
    if isinstance(events, str):
        events = load_trace(events)
    steps = 0
    peak_state = 0
    peak_product = 0
    final_state = 0
    peak_live = 0
    gc_events = 0
    gc_nodes_freed = 0
    gc_pause = 0.0
    degrade_events = 0
    degrade_fidelity = 1.0
    checkpoint_events = 0
    reorder_events = 0
    reorder_nodes_saved = 0
    jobs_done = 0
    lease_events = 0
    lease_expiries = 0
    retry_events = 0
    quarantine_events = 0
    last_hit_rates: dict[str, float] = {}
    for event in events:
        kind = event.get("event")
        if kind == "step":
            steps += 1
            state_nodes = event.get("state_nodes", 0)
            final_state = state_nodes
            peak_state = max(peak_state, state_nodes)
            peak_product = max(peak_product, event.get("product_nodes", 0))
            peak_live = max(peak_live, event.get("live_nodes", 0))
            for key in ("apply_gate_hit_rate", "mult_mv_hit_rate"):
                if key in event:
                    last_hit_rates[key] = event[key]
        elif kind == "gc":
            gc_events += 1
            gc_nodes_freed += event.get("nodes_freed", 0)
            gc_pause += event.get("pause_seconds", 0.0)
        elif kind == "degrade":
            degrade_events += 1
            degrade_fidelity *= event.get("fidelity", 1.0)
        elif kind == "checkpoint":
            checkpoint_events += 1
        elif kind == "reorder":
            reorder_events += 1
            reorder_nodes_saved += (event.get("nodes_before", 0)
                                    - event.get("nodes_after", 0))
        elif kind == "job":
            if event.get("action") == "done":
                jobs_done += 1
        elif kind == "lease":
            lease_events += 1
            if event.get("action") == "expired":
                lease_expiries += 1
        elif kind == "retry":
            retry_events += 1
        elif kind == "quarantine":
            quarantine_events += 1
    summary = {
        "steps": steps,
        "peak_state_nodes": peak_state,
        "peak_product_nodes": peak_product,
        "final_state_nodes": final_state,
        "peak_live_nodes": peak_live,
        "gc_events": gc_events,
        "gc_nodes_freed": gc_nodes_freed,
        "gc_pause_seconds": round(gc_pause, 6),
        "degrade_events": degrade_events,
        "degrade_fidelity": round(degrade_fidelity, 9),
        "checkpoint_events": checkpoint_events,
        "reorder_events": reorder_events,
        "reorder_nodes_saved": reorder_nodes_saved,
        **{key: round(value, 6) for key, value in last_hit_rates.items()},
    }
    # supervision counters only appear when the trace contains job events,
    # so pure engine traces keep their historical summary shape
    if jobs_done or lease_events or retry_events or quarantine_events:
        summary.update({
            "jobs_done": jobs_done,
            "lease_events": lease_events,
            "lease_expiries": lease_expiries,
            "retry_events": retry_events,
            "quarantine_events": quarantine_events,
        })
    return summary
