"""Exact open-system simulation: density matrices as matrix DDs.

The trajectory sampler (:mod:`repro.simulation.noise`) converges to the
true noisy state only statistically; this module computes it *exactly* by
evolving the density matrix -- which is just another ``2^n x 2^n`` matrix,
so the existing matrix-DD machinery (MxM multiplication, addition,
adjoints) does all the work:

* unitary evolution:   ``rho -> U rho U^dagger``   (two MxM products)
* Kraus channels:      ``rho -> sum_k K_k rho K_k^dagger``
* readout:             probabilities are the diagonal entries.

The standard single-qubit channels (depolarising, bit/phase flip,
amplitude damping) are provided as Kraus sets; the depolarising channel at
rate ``p`` matches the trajectory model's uniform-Pauli error, which the
test suite exploits to cross-validate both implementations.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..dd.edge import Edge
from ..dd.gate_building import build_gate_dd
from ..dd.package import Package

__all__ = ["DensityMatrixSimulator", "depolarizing_kraus", "bit_flip_kraus",
           "phase_flip_kraus", "amplitude_damping_kraus", "partial_trace"]

_ID = np.eye(2)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


def depolarizing_kraus(probability: float) -> list[np.ndarray]:
    """Uniform Pauli error with total probability ``p`` (X, Y, Z at p/3).

    This is exactly the channel the trajectory noise model samples from.
    """
    _check_probability(probability)
    p3 = probability / 3.0
    return [math.sqrt(1 - probability) * _ID,
            math.sqrt(p3) * _X, math.sqrt(p3) * _Y, math.sqrt(p3) * _Z]


def bit_flip_kraus(probability: float) -> list[np.ndarray]:
    _check_probability(probability)
    return [math.sqrt(1 - probability) * _ID,
            math.sqrt(probability) * _X]


def phase_flip_kraus(probability: float) -> list[np.ndarray]:
    _check_probability(probability)
    return [math.sqrt(1 - probability) * _ID,
            math.sqrt(probability) * _Z]


def amplitude_damping_kraus(gamma: float) -> list[np.ndarray]:
    """Energy relaxation ``|1> -> |0>`` with probability ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {value}")


def partial_trace(package: Package, rho: Edge, qubit: int) -> Edge:
    """Trace out one qubit of a density-matrix DD.

    Returns the reduced density matrix on the remaining qubits (levels
    above ``qubit`` shift down by one).  The reduced state of one half of a
    Bell pair, for instance, is the maximally mixed single-qubit state.
    """
    if rho.weight == 0:
        return rho
    if not 0 <= qubit <= rho.node.level:
        raise ValueError(f"qubit {qubit} out of range")
    cache: dict[int, Edge] = {}

    def reduce(node) -> Edge:
        found = cache.get(id(node))
        if found is not None:
            return found
        if node.level == qubit:
            # Tr over this level: rho00 + rho11 quadrants
            result = package.add_matrices(node.edges[0], node.edges[3])
        else:
            children = []
            for child in node.edges:
                if child.weight == 0:
                    children.append(package.zero)
                else:
                    children.append(package._scaled(reduce(child.node),
                                                    child.weight))
            result = package.make_matrix_node(node.level - 1,
                                              tuple(children))
        cache[id(node)] = result
        return result

    if rho.node.level == qubit:
        traced = package.add_matrices(rho.node.edges[0], rho.node.edges[3])
        return package._scaled(traced, rho.weight)
    return package._scaled(reduce(rho.node), rho.weight)


class DensityMatrixSimulator:
    """Evolves a density-matrix DD through gates and Kraus channels."""

    def __init__(self, num_qubits: int,
                 package: Package | None = None) -> None:
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.package = package or Package()
        self.rho = self._pure_basis_density(0)

    # ------------------------------------------------------------------

    def _pure_basis_density(self, index: int) -> Edge:
        """``|index><index|`` built directly (one node chain)."""
        package = self.package
        edge = package.one
        for level in range(self.num_qubits):
            bit = (index >> level) & 1
            zero = package.zero
            children = (edge, zero, zero, zero) if bit == 0 \
                else (zero, zero, zero, edge)
            edge = package.make_matrix_node(level, children)
        return edge

    def set_basis_state(self, index: int) -> None:
        if not 0 <= index < 1 << self.num_qubits:
            raise ValueError(f"basis index {index} out of range")
        self.rho = self._pure_basis_density(index)

    # ------------------------------------------------------------------

    def apply_operation(self, operation: Operation) -> None:
        """Unitary step: ``rho -> U rho U^dagger``."""
        package = self.package
        u = build_gate_dd(package, operation.matrix(), self.num_qubits,
                          operation.target, operation.control_map())
        u_dagger = package.conjugate_transpose(u)
        self.rho = package.multiply_matrix_matrix(
            u, package.multiply_matrix_matrix(self.rho, u_dagger))

    def apply_kraus(self, kraus: Sequence[np.ndarray],
                    qubit: int) -> None:
        """Single-qubit channel: ``rho -> sum_k K rho K^dagger``."""
        package = self.package
        if not kraus:
            raise ValueError("channel needs at least one Kraus operator")
        completeness = sum(np.conj(k).T @ k for k in kraus)
        if not np.allclose(completeness, np.eye(2), atol=1e-9):
            raise ValueError("Kraus operators do not satisfy "
                             "sum K^dagger K = I")
        total = package.zero
        for k in kraus:
            operator = build_gate_dd(package, k, self.num_qubits, qubit)
            adjoint = package.conjugate_transpose(operator)
            term = package.multiply_matrix_matrix(
                operator, package.multiply_matrix_matrix(self.rho, adjoint))
            total = package.add_matrices(total, term)
        self.rho = total

    def run(self, circuit: QuantumCircuit,
            channel: Sequence[np.ndarray] | None = None) -> None:
        """Apply a circuit; optionally a per-qubit channel after each gate."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit size does not match simulator size")
        for operation in circuit.operations():
            self.apply_operation(operation)
            if channel is not None:
                for qubit in operation.qubits():
                    self.apply_kraus(channel, qubit)

    # ------------------------------------------------------------------

    def probability(self, index: int) -> float:
        """Diagonal entry ``<index| rho |index>``."""
        package = self.package
        weight = self.rho.weight
        node = self.rho.node
        while node.level != -1:
            if weight == 0:
                return 0.0
            bit = (index >> node.level) & 1
            child = node.edges[2 * bit + bit]
            weight *= child.weight
            node = child.node
        return max(0.0, weight.real)

    def probabilities(self) -> list[float]:
        return [self.probability(i) for i in range(1 << self.num_qubits)]

    def trace(self) -> float:
        """``Tr(rho)`` -- must stay 1 under trace-preserving evolution."""
        return sum(self.probabilities())

    def purity(self) -> float:
        """``Tr(rho^2)``: 1 for pure states, 1/2^n for maximal mixing."""
        package = self.package
        squared = package.multiply_matrix_matrix(self.rho, self.rho)
        cache: dict[int, complex] = {}

        def diag_trace(node) -> complex:
            if node.level == -1:
                return 1 + 0j
            found = cache.get(id(node))
            if found is not None:
                return found
            total = 0j
            for child in (node.edges[0], node.edges[3]):
                if child.weight != 0:
                    total += child.weight * diag_trace(child.node)
            cache[id(node)] = total
            return total

        if squared.weight == 0:
            return 0.0
        return (squared.weight * diag_trace(squared.node)).real

    def expectation_diagonal(self, value) -> float:
        """``sum_x P(x) value(x)`` for a diagonal observable."""
        return sum(self.probability(i) * value(i)
                   for i in range(1 << self.num_qubits))

    def nodes(self) -> int:
        return self.package.count_nodes(self.rho)
