"""Stochastic Pauli noise via trajectory simulation.

Real devices (the reason simulators exist, per the paper's introduction)
apply every gate imperfectly.  The standard way to model this on a pure-
state simulator is *quantum trajectories*: after each gate, each touched
qubit suffers a random Pauli error with some probability; averaging over
many trajectories reproduces the depolarising channel.  Each trajectory is
an ordinary circuit, so the whole strategy machinery (combining included)
applies unchanged -- noise composes with every simulation strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..circuit.circuit import QuantumCircuit
from ..circuit.operation import Operation
from ..simulation.engine import SimulationEngine
from ..simulation.result import SimulationResult
from ..simulation.strategies import SimulationStrategy

__all__ = ["NoiseModel", "noisy_trajectory_circuit", "simulate_trajectory",
           "noisy_counts"]

_PAULIS = ("x", "y", "z")


@dataclass(frozen=True)
class NoiseModel:
    """Per-gate stochastic Pauli noise parameters.

    ``gate_error``: probability that each qubit touched by a gate suffers a
    uniformly random Pauli error afterwards (depolarising-style).
    ``measurement_flip``: probability that a classical readout bit flips.
    """

    gate_error: float = 0.0
    measurement_flip: float = 0.0

    def __post_init__(self) -> None:
        for name in ("gate_error", "measurement_flip"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @property
    def is_noiseless(self) -> bool:
        return self.gate_error == 0.0 and self.measurement_flip == 0.0


def noisy_trajectory_circuit(circuit: QuantumCircuit, noise: NoiseModel,
                             rng: Random) -> QuantumCircuit:
    """One random trajectory: the circuit with sampled Pauli errors inserted.

    Deterministic given ``rng``'s state; repeated blocks are unrolled
    (every repetition gets independent errors, as on hardware).
    """
    trajectory = QuantumCircuit(circuit.num_qubits,
                                name=f"{circuit.name}_trajectory")
    for operation in circuit.operations():
        trajectory.append(operation)
        if noise.gate_error <= 0.0:
            continue
        for qubit in operation.qubits():
            if rng.random() < noise.gate_error:
                trajectory.append(Operation(rng.choice(_PAULIS), qubit))
    return trajectory


def simulate_trajectory(circuit: QuantumCircuit, noise: NoiseModel,
                        rng: Random,
                        strategy: SimulationStrategy | None = None,
                        engine: SimulationEngine | None = None
                        ) -> SimulationResult:
    """Simulate one noisy trajectory of ``circuit``."""
    engine = engine or SimulationEngine()
    return engine.simulate(noisy_trajectory_circuit(circuit, noise, rng),
                           strategy)


def _flip_bits(index: int, num_qubits: int, probability: float,
               rng: Random) -> int:
    if probability <= 0.0:
        return index
    for qubit in range(num_qubits):
        if rng.random() < probability:
            index ^= 1 << qubit
    return index


def noisy_counts(circuit: QuantumCircuit, noise: NoiseModel,
                 trajectories: int, shots_per_trajectory: int = 1,
                 seed: int = 0,
                 strategy: SimulationStrategy | None = None) -> dict[int, int]:
    """Measurement histogram under the noise model.

    Runs ``trajectories`` independent noisy circuits, draws
    ``shots_per_trajectory`` samples from each, and applies classical
    readout flips.  With ``noise.is_noiseless`` a single trajectory is
    simulated (trajectories only differ by their errors).
    """
    if trajectories < 1:
        raise ValueError("need at least one trajectory")
    rng = Random(seed)
    counts: dict[int, int] = {}
    effective_trajectories = 1 if noise.is_noiseless else trajectories
    shots = shots_per_trajectory
    if noise.is_noiseless:
        shots = trajectories * shots_per_trajectory
    for _ in range(effective_trajectories):
        result = simulate_trajectory(circuit, noise, rng, strategy)
        for _ in range(shots):
            from ..dd.measurement import sample_bitstring

            outcome = sample_bitstring(result.package, result.state, rng)
            outcome = _flip_bits(outcome, circuit.num_qubits,
                                 noise.measurement_flip, rng)
            counts[outcome] = counts.get(outcome, 0) + 1
    return counts
