"""Checkpoint/resume for long simulation runs.

Large DD simulations (the Shor and supremacy instances the paper targets)
run for hours; a crash, an OOM kill, or a scheduler preemption at hour
three should not cost the first three hours.  A checkpoint captures
everything needed to continue a run *bit-exactly*:

* the state DD and (for combining strategies) the pending product DD,
  serialised with :mod:`repro.dd.serialization`,
* the index of the next elementary operation in the *flattened* operation
  stream (:meth:`QuantumCircuit.operations
  <repro.circuit.circuit.QuantumCircuit.operations>` order -- repeated
  blocks unrolled, so the index is well-defined for every strategy),
* the strategy as a :func:`~repro.simulation.strategies.strategy_from_spec`
  spec string plus its scalar :meth:`state_dict
  <repro.simulation.strategies.SimulationStrategy.state_dict>`,
* accumulated statistics, degradation-policy state, and governor counters.

Checkpoints are JSON on disk and written **atomically**: the payload goes
to ``<path>.tmp``, is flushed and fsynced, and only then renamed over
``<path>`` with :func:`os.replace`.  A crash mid-write therefore leaves
either the previous complete checkpoint or a stray ``.tmp`` -- never a
truncated file that parses.  Loading validates structure defensively and
raises :class:`ValueError` naming the problem (the DD payloads get the
same treatment inside :func:`~repro.dd.serialization.deserialize_dd`).

The checkpoint binds to its circuit through a fingerprint -- a SHA-256
over the flattened operation stream -- so resuming against a different (or
differently-parametrised) circuit fails loudly instead of producing a
silently wrong state.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from ..circuit.circuit import QuantumCircuit

__all__ = ["CHECKPOINT_FORMAT", "SUPPORTED_CHECKPOINT_FORMATS", "Checkpoint",
           "CheckpointError", "circuit_fingerprint", "load_checkpoint",
           "save_checkpoint"]


class CheckpointError(ValueError):
    """A checkpoint file that cannot be loaded.

    Raised for truncated or partially-written files (naming the file and
    the byte offset where parsing stopped) and for structurally invalid
    payloads.  Subclasses :class:`ValueError` so existing callers keep
    working; new callers (the job supervisor) catch this specifically to
    decide "restart from operation 0" instead of poisoning the job.
    """

#: Version stamp written into every checkpoint; bump on breaking changes.
#: Version 2 added the optional ``permutation`` field (mid-run variable
#: reordering); version-1 files load fine with ``permutation = None``.
CHECKPOINT_FORMAT = 2

#: Versions :func:`load_checkpoint` accepts.
SUPPORTED_CHECKPOINT_FORMATS = (1, 2)


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """SHA-256 over the flattened elementary-operation stream.

    Two circuits with the same fingerprint drive a strategy through the
    same sequence of gate applications, which is exactly the contract a
    checkpoint's ``op_index`` depends on.  The circuit *name* is excluded
    on purpose: a reconstructed circuit resumes fine under a new name.
    """
    hasher = hashlib.sha256()
    hasher.update(f"qubits={circuit.num_qubits}".encode())
    for operation in circuit.operations():
        controls = ",".join(f"{qubit}:{value}"
                            for qubit, value in operation.controls)
        params = ",".join(repr(float(p)) for p in operation.params)
        hasher.update(f"|{operation.gate}@{operation.target}"
                      f"[{controls}]({params})".encode())
    return hasher.hexdigest()


@dataclass
class Checkpoint:
    """One resumable snapshot of a simulation run (JSON-serialisable)."""

    circuit_name: str
    circuit_fingerprint: str
    num_qubits: int
    #: index of the next flattened operation to apply (ops [0, op_index)
    #: are fully reflected in ``state`` + ``pending``)
    op_index: int
    total_ops: int
    strategy_spec: str
    strategy_state: dict
    #: the state DD (:func:`~repro.dd.serialization.serialize_dd` output)
    state: dict
    #: the pending product DD, or ``None`` when nothing was accumulating
    pending: dict | None
    #: :meth:`SimulationStatistics.as_dict` of the run so far
    statistics: dict
    #: the package's canonical complex-weight representatives in insertion
    #: order; replayed on resume so recomputed weights snap to the same
    #: floats the uninterrupted run would have used (bit-exact resume)
    complex_table: list | None = None
    #: :meth:`DegradationPolicy.state_dict`, or ``None`` when not degrading
    degradation: dict | None = None
    #: governor counters at checkpoint time (informational)
    governor: dict | None = None
    #: cumulative qubit permutation after mid-run reordering
    #: (``permutation[q]`` = DD level of original qubit ``q``), or ``None``
    #: when the run never reordered / the order is back to identity
    permutation: list | None = None
    #: why the checkpoint was written (``periodic``, exception class name)
    reason: str = "periodic"
    created_at: float = field(default_factory=time.time)
    version: int = CHECKPOINT_FORMAT

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Any, source: str = "checkpoint") -> "Checkpoint":
        """Validate and rebuild a checkpoint from parsed JSON.

        Raises :class:`ValueError` naming the offending field; never a
        bare ``KeyError``/``TypeError`` from a truncated or edited file.
        """
        if not isinstance(payload, dict):
            raise CheckpointError(
                f"{source}: checkpoint payload must be a dict, "
                f"got {type(payload).__name__}")
        version = payload.get("version")
        if version not in SUPPORTED_CHECKPOINT_FORMATS:
            raise CheckpointError(
                f"{source}: unsupported checkpoint version "
                f"{version!r} (this build reads versions "
                f"{SUPPORTED_CHECKPOINT_FORMATS})")
        required = {
            "circuit_fingerprint": str,
            "num_qubits": int,
            "op_index": int,
            "total_ops": int,
            "strategy_spec": str,
            "state": dict,
            "statistics": dict,
        }
        for key, expected in required.items():
            value = payload.get(key)
            if not isinstance(value, expected) or isinstance(value, bool):
                raise CheckpointError(
                    f"{source}: field {key!r} must be a "
                    f"{expected.__name__}, got {type(value).__name__}"
                    if key in payload else
                    f"{source}: missing required field {key!r}")
        if payload["op_index"] < 0 or payload["num_qubits"] < 1:
            raise CheckpointError(
                f"{source}: op_index/num_qubits out of range")
        if payload["op_index"] > payload["total_ops"]:
            raise CheckpointError(
                f"{source}: op_index {payload['op_index']} exceeds "
                f"total_ops {payload['total_ops']}")
        pending = payload.get("pending")
        if pending is not None and not isinstance(pending, dict):
            raise CheckpointError(
                f"{source}: field 'pending' must be a dict "
                f"or null, got {type(pending).__name__}")
        permutation = payload.get("permutation")
        if permutation is not None:
            if (not isinstance(permutation, list)
                    or sorted(permutation)
                    != list(range(payload["num_qubits"]))):
                raise CheckpointError(
                    f"{source}: field 'permutation' must be null or a "
                    f"permutation of 0..{payload['num_qubits'] - 1}, "
                    f"got {permutation!r}")
        return cls(
            circuit_name=str(payload.get("circuit_name", "")),
            circuit_fingerprint=payload["circuit_fingerprint"],
            num_qubits=payload["num_qubits"],
            op_index=payload["op_index"],
            total_ops=payload["total_ops"],
            strategy_spec=payload["strategy_spec"],
            strategy_state=payload.get("strategy_state") or {},
            state=payload["state"],
            pending=pending,
            statistics=payload["statistics"],
            complex_table=payload.get("complex_table"),
            degradation=payload.get("degradation"),
            governor=payload.get("governor"),
            permutation=permutation,
            reason=str(payload.get("reason", "periodic")),
            created_at=float(payload.get("created_at", 0.0)),
            version=version,
        )


def save_checkpoint(checkpoint: Checkpoint, path: str) -> str:
    """Write ``checkpoint`` to ``path`` atomically; return ``path``.

    The JSON is written to ``<path>.tmp``, flushed and fsynced, then
    renamed over ``path`` in one :func:`os.replace` step -- a reader (or a
    resume after a crash mid-write) only ever sees a complete checkpoint.
    """
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(checkpoint.as_dict(), handle, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def load_checkpoint(path: str) -> Checkpoint:
    """Load and validate a checkpoint written by :func:`save_checkpoint`.

    A file that does not parse -- truncated mid-write, overwritten with
    garbage -- raises :class:`CheckpointError` naming the file and the
    byte offset where JSON parsing stopped, never a raw
    ``json.JSONDecodeError``.  Structural problems in a file that *does*
    parse get the same treatment via :meth:`Checkpoint.from_dict`.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path}: not a valid checkpoint "
                f"(truncated or corrupt JSON at byte {exc.pos}: "
                f"{exc.msg})") from None
    return Checkpoint.from_dict(payload, source=path)
