"""Operation-combining strategies (the paper's Section IV).

A strategy decides *when* accumulated gate matrices are applied to the state
vector.  All strategies consume the same stream of elementary operations and
produce the same final state; they differ only in how they interleave
matrix-matrix multiplications (combining operations, Eq. 2) with
matrix-vector multiplications (simulation steps, Eq. 1):

* :class:`SequentialStrategy` -- the state of the art the paper improves on:
  one matrix-vector multiplication per gate (pure Eq. 1).
* :class:`KOperationsStrategy` -- combine every ``k`` consecutive gates into
  one matrix before touching the state (Sec. IV-A, Fig. 8).
* :class:`MaxSizeStrategy` -- combine gates until the product DD exceeds
  ``s_max`` nodes, then apply it (Sec. IV-A, Fig. 9).
* :class:`RepeatingBlockStrategy` -- *DD-repeating* (Sec. IV-B): combine the
  body of a :class:`~repro.circuit.circuit.RepeatedBlock` once and re-use the
  resulting matrix DD for every repetition.

Strategies are streaming objects: the engine calls :meth:`feed` per
elementary operation and :meth:`flush` at boundaries, so they compose (the
repeating strategy delegates non-block segments to any inner strategy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..circuit.circuit import QuantumCircuit, RepeatedBlock
from ..dd.edge import Edge

if TYPE_CHECKING:  # pragma: no cover
    from .engine import _Run

__all__ = [
    "AdaptiveStrategy",
    "SimulationStrategy",
    "SequentialStrategy",
    "KOperationsStrategy",
    "MaxSizeStrategy",
    "RepeatingBlockStrategy",
    "strategy_from_spec",
]


class SimulationStrategy:
    """Base class: drives a circuit through a run, one operation at a time."""

    name = "abstract"

    def describe(self) -> str:
        """Parametrised display name (e.g. ``k-operations(k=4)``)."""
        return self.name

    # -- checkpoint interface ------------------------------------------

    def spec(self) -> str:
        """A spec string :func:`strategy_from_spec` re-parses into an
        equivalent strategy.  Checkpoints store this instead of pickling
        the strategy object."""
        raise NotImplementedError(
            f"strategy {self.name!r} has no checkpoint spec")

    def state_dict(self) -> dict:
        """JSON-compatible mid-run state (scalars only -- any pending
        product DD is checkpointed separately by the engine)."""
        return {}

    def load_state_dict(self, payload: dict) -> None:
        """Restore :meth:`state_dict` output.  Call after :meth:`begin`."""

    def restore_pending(self, run: "_Run", pending: Edge) -> None:
        """Re-adopt a deserialised pending product DD on resume.

        Strategies that never accumulate reject a non-``None`` pending
        product: such a checkpoint cannot have come from them.
        """
        raise ValueError(f"strategy {self.name!r} does not accumulate "
                         "products; checkpoint carries a pending DD")

    # -- streaming interface -------------------------------------------

    def begin(self, run: "_Run") -> None:
        """Reset per-run state.  Called once before the first operation."""

    def on_reorder(self, run: "_Run") -> None:
        """The engine reordered the run's variables mid-flight.

        Called after a governed sift permuted the state, the pending
        product and the run's cumulative permutation.  Strategies holding
        references to DDs built under the old order must re-adopt the
        permuted versions from the run (or drop their caches) here; the
        default is a no-op for strategies that hold no DDs of their own.
        """

    def feed(self, run: "_Run", operation) -> None:
        """Consume one elementary operation."""
        raise NotImplementedError

    def flush(self, run: "_Run") -> None:
        """Apply any pending combined matrix to the state."""

    # -- circuit driver -------------------------------------------------

    def execute(self, run: "_Run", circuit: QuantumCircuit) -> None:
        self.begin(run)
        for instruction in circuit.instructions:
            if isinstance(instruction, RepeatedBlock):
                self.handle_block(run, instruction)
            else:
                self.feed(run, instruction)
        self.flush(run)

    def handle_block(self, run: "_Run", block: RepeatedBlock) -> None:
        """Default block handling: unroll (no structural knowledge used)."""
        for _ in range(block.repetitions):
            for operation in block.operations():
                self.feed(run, operation)


class SequentialStrategy(SimulationStrategy):
    """State-of-the-art baseline: one state update per gate (pure Eq. 1).

    On engines with ``use_local_apply`` (the default) each gate is applied
    through the package's local-gate fast path; otherwise every gate builds
    its full-register matrix DD and runs one matrix-vector multiplication,
    exactly as in the paper.
    """

    name = "sequential"

    def spec(self) -> str:
        return "sequential"

    def feed(self, run: "_Run", operation) -> None:
        run.apply_operation(operation)
        run.note_operation()


class _AccumulatingStrategy(SimulationStrategy):
    """Shared machinery for strategies that build up a product matrix.

    ``_product_nodes`` tracks the pending product's DD size without
    re-traversing it: a fresh single-gate product is counted once, and every
    combination reuses the count :meth:`_Run.combine` already took for its
    peak-size statistic.  Size-bounded strategies previously called
    ``count_nodes(product)`` on *every* feed -- an O(product) walk per
    operation, quadratic over a combining streak.
    """

    def begin(self, run: "_Run") -> None:
        self._product: Edge | None = None
        self._product_nodes = 0
        run.set_pending(None)

    def restore_pending(self, run: "_Run", pending: Edge) -> None:
        self._product = pending
        self._product_nodes = run.package.count_nodes(pending)
        run.set_pending(pending)

    def on_reorder(self, run: "_Run") -> None:
        """Re-adopt the (engine-permuted) pending product after a sift."""
        if self._product is not None:
            self._product = run._pending
            self._product_nodes = run.package.count_nodes(self._product) \
                if self._product is not None else 0

    def flush(self, run: "_Run") -> None:
        if self._product is not None:
            run.apply_matrix(self._product)
            self._product = None
            self._product_nodes = 0
            run.set_pending(None)

    def _absorb(self, run: "_Run", operation) -> Edge:
        """Multiply the operation's DD onto the pending product (left side)."""
        gate = run.gate_dd(operation)
        if self._product is None:
            self._product = gate
            self._product_nodes = run.package.count_nodes(gate)
        else:
            # Later operations act later: M_new @ M_accumulated.
            self._product = run.combine(gate, self._product)
            self._product_nodes = run.last_product_nodes
        run.set_pending(self._product)
        run.note_operation()
        return self._product


class KOperationsStrategy(_AccumulatingStrategy):
    """Combine every ``k`` consecutive operations before a simulation step.

    ``k = 1`` degenerates to the sequential baseline (every gate is applied
    immediately); very large ``k`` approaches pure Eq. 2.
    """

    name = "k-operations"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.k = k

    def describe(self) -> str:
        return f"k-operations(k={self.k})"

    def spec(self) -> str:
        return f"k={self.k}"

    def state_dict(self) -> dict:
        return {"pending_count": self._pending_count}

    def load_state_dict(self, payload: dict) -> None:
        self._pending_count = int(payload.get("pending_count", 0))

    def begin(self, run: "_Run") -> None:
        super().begin(run)
        self._pending_count = 0

    def feed(self, run: "_Run", operation) -> None:
        self._absorb(run, operation)
        self._pending_count += 1
        if self._pending_count >= self.k:
            self.flush(run)
            self._pending_count = 0

    def flush(self, run: "_Run") -> None:
        super().flush(run)
        self._pending_count = 0


class MaxSizeStrategy(_AccumulatingStrategy):
    """Combine operations until the product DD exceeds ``s_max`` nodes.

    Parametrising on the DD size rather than the operation count adapts to
    how expensive the product actually became (Sec. IV-A, second strategy).
    The product that first exceeds the bound is applied, so progress is
    guaranteed even when a single gate is larger than ``s_max``.
    """

    name = "max-size"

    def __init__(self, s_max: int) -> None:
        if s_max < 1:
            raise ValueError(f"s_max must be at least 1, got {s_max}")
        self.s_max = s_max

    def describe(self) -> str:
        return f"max-size(s_max={self.s_max})"

    def spec(self) -> str:
        return f"smax={self.s_max}"

    def feed(self, run: "_Run", operation) -> None:
        self._absorb(run, operation)
        if self._product_nodes > self.s_max:
            self.flush(run)


class AdaptiveStrategy(_AccumulatingStrategy):
    """Combine operations while the product stays small *relative to the
    state DD* -- an extension beyond the paper's fixed parametrisations.

    The paper's cost analysis (Sec. III) says combining pays off while the
    product DD is small compared to the state DD it spares from repeated
    multiplication.  This strategy measures exactly that: operations are
    combined while ``|product| <= ratio * |state|`` (clamped to
    ``[floor, ceiling]``), so the threshold adapts as the state grows or
    shrinks during simulation -- no manual ``k`` / ``s_max`` tuning.
    """

    name = "adaptive"

    def __init__(self, ratio: float = 0.5, floor: int = 4,
                 ceiling: int = 4096) -> None:
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        if floor < 1 or ceiling < floor:
            raise ValueError("need 1 <= floor <= ceiling")
        self.ratio = ratio
        self.floor = floor
        self.ceiling = ceiling

    def describe(self) -> str:
        return f"adaptive(ratio={self.ratio:g})"

    def spec(self) -> str:
        return f"adaptive={self.ratio:g}"

    def state_dict(self) -> dict:
        # floor/ceiling are not representable in the spec string, so the
        # state dict carries them; ``state_nodes`` keeps the combining
        # threshold identical across a checkpoint/resume boundary (it is
        # only re-measured at flushes).
        return {"state_nodes": self._state_nodes,
                "floor": self.floor, "ceiling": self.ceiling}

    def load_state_dict(self, payload: dict) -> None:
        self.floor = int(payload.get("floor", self.floor))
        self.ceiling = int(payload.get("ceiling", self.ceiling))
        if "state_nodes" in payload:
            self._state_nodes = int(payload["state_nodes"])

    def begin(self, run: "_Run") -> None:
        super().begin(run)
        self._state_nodes = run.package.count_nodes(run.state)

    def on_reorder(self, run: "_Run") -> None:
        super().on_reorder(run)
        # A sift usually shrinks the state; the combining threshold should
        # track the new size, not the pre-reorder one.
        self._state_nodes = run.package.count_nodes(run.state)

    def _threshold(self) -> int:
        scaled = int(self.ratio * self._state_nodes)
        return min(self.ceiling, max(self.floor, scaled))

    def feed(self, run: "_Run", operation) -> None:
        self._absorb(run, operation)
        if self._product_nodes > self._threshold():
            self.flush(run)

    def flush(self, run: "_Run") -> None:
        super().flush(run)
        # The state only changes when a product is applied; re-measure here
        # instead of on every feed (which would cost as much as the
        # multiplication it tries to avoid).
        self._state_nodes = run.package.count_nodes(run.state)


class RepeatingBlockStrategy(SimulationStrategy):
    """*DD-repeating*: combine a repeated block once, re-use it every pass.

    Non-block segments are delegated to ``inner`` (any other strategy; the
    sequential baseline by default).  The combined matrix DD of each distinct
    block is cached, so a Grover iteration costs matrix-matrix combination
    work exactly once and one matrix-vector multiplication per repetition
    afterwards -- with no further combining (Sec. IV-B).
    """

    name = "dd-repeating"

    def __init__(self, inner: SimulationStrategy | None = None) -> None:
        self.inner = inner or SequentialStrategy()
        if isinstance(self.inner, RepeatingBlockStrategy):
            raise ValueError("inner strategy must not itself be "
                             "a RepeatingBlockStrategy")

    def describe(self) -> str:
        return f"dd-repeating(inner={self.inner.describe()})"

    def spec(self) -> str:
        return f"repeating:{self.inner.spec()}"

    def state_dict(self) -> dict:
        # The block cache is keyed by object identity and rebuilt lazily;
        # only the inner strategy carries resumable state.
        return self.inner.state_dict()

    def load_state_dict(self, payload: dict) -> None:
        self.inner.load_state_dict(payload)

    def restore_pending(self, run: "_Run", pending: Edge) -> None:
        self.inner.restore_pending(run, pending)

    def begin(self, run: "_Run") -> None:
        self.inner.begin(run)
        self._block_cache: dict[int, Edge] = {}

    def feed(self, run: "_Run", operation) -> None:
        self.inner.feed(run, operation)

    def flush(self, run: "_Run") -> None:
        self.inner.flush(run)

    def on_reorder(self, run: "_Run") -> None:
        """Drop the block cache: its DDs were combined under the old order.

        The cached matrices (and their pins among the run's extra roots)
        would silently apply old-order blocks to the reordered state;
        clearing both makes the next repetition re-combine under the new
        order (through :meth:`_Run.gate_dd`, which remaps the operations).
        """
        self.inner.on_reorder(run)
        self._block_cache.clear()
        run._extra_roots.clear()

    def handle_block(self, run: "_Run", block: RepeatedBlock) -> None:
        if block.repetitions == 0:
            return
        # The pending inner product (if any) must hit the state first; the
        # block matrix is re-used across repetitions and cannot absorb it.
        self.inner.flush(run)
        body_size = sum(1 for _ in block.operations())
        # Every repetition logically consumes the block's operations, even
        # though only cache misses do multiplication work.
        run.note_operation(body_size * block.repetitions)
        for _ in range(block.repetitions):
            # Re-fetched every pass: a governed mid-block reorder clears
            # the cache (the combined DD belongs to the old variable
            # order), and holding a pre-reorder local across apply_matrix
            # would corrupt the remaining repetitions.
            combined = self._block_cache.get(id(block))
            if combined is None:
                combined = self._combine_block(run, block)
                self._block_cache[id(block)] = combined
                run.add_root(combined)
            else:
                run.statistics.reused_block_applications += 1
            run.apply_matrix(combined)

    def _combine_block(self, run: "_Run", block: RepeatedBlock) -> Edge:
        product: Edge | None = None
        for operation in block.operations():
            gate = run.gate_dd(operation)
            product = gate if product is None else run.combine(gate, product)
        if product is None:  # empty block body: identity
            return run.package.identity(run.num_qubits)
        return product


def _spec_number(spec: str, text: str, parse, kind: str):
    """Parse a spec parameter, raising a ValueError that names the spec."""
    try:
        return parse(text)
    except ValueError:
        raise ValueError(f"malformed strategy spec {spec!r}: expected "
                         f"{kind} after '=', got {text!r}") from None


def strategy_from_spec(spec: str) -> SimulationStrategy:
    """Parse strategy specs like ``sequential``, ``k=8``, ``smax=128``,
    ``repeating`` or ``repeating:k=8`` (inner strategy after the colon).

    Malformed parameters (``k=abc``, ``smax=``, ``adaptive=x``) raise a
    :class:`ValueError` naming the offending spec.
    """
    spec = spec.strip().lower()
    if spec in ("sequential", "sota", "baseline"):
        return SequentialStrategy()
    if spec.startswith("repeating"):
        _, _, inner = spec.partition(":")
        return RepeatingBlockStrategy(strategy_from_spec(inner) if inner
                                      else None)
    if spec.startswith("k="):
        return KOperationsStrategy(
            _spec_number(spec, spec[2:], int, "an integer"))
    if spec.startswith("smax="):
        return MaxSizeStrategy(
            _spec_number(spec, spec[5:], int, "an integer"))
    if spec == "adaptive":
        return AdaptiveStrategy()
    if spec.startswith("adaptive="):
        return AdaptiveStrategy(ratio=_spec_number(
            spec, spec[len("adaptive="):], float, "a number"))
    raise ValueError(f"unknown strategy spec {spec!r}")
