"""Parallel batch execution of experiment cells (``SweepRunner``).

The paper's evidence is a *sweep*: every benchmark instance crossed with
every strategy (and, for the tables, a couple of repetitions), each cell
timed and compared.  Run serially, the ``accurate`` reproduction profile
takes hours; this module fans the cells out over a pool of shared-nothing
worker processes.

Design constraints, in decreasing order of importance:

**Per-worker isolation is mandatory, not an optimisation.**  DD node
identity is process-local state: nodes are interned in per-\
:class:`~repro.dd.package.Package` unique tables, compute-table slots hash
on node object addresses, and ``id()`` values are meaningless across
processes.  Workers therefore never share DD state -- every cell constructs
its own :class:`Package` (inside a fresh engine) and ships *plain data*
(:meth:`SimulationStatistics.as_dict`) back to the parent.

**A blown-up cell never kills the sweep.**  A cell that raises, exceeds its
``max_nodes`` budget, or runs past its ``timeout`` is recorded as a
``failed``/``timeout`` :class:`CellResult` carrying an error record; the
remaining cells are unaffected.

**A died worker's cells are retried once on a fresh pool.**  If a worker
process dies mid-cell (OOM-killed, segfault, ``os._exit``), the pool is
broken for every in-flight future; the runner rebuilds it and retries the
affected cells sequentially on one-worker pools, so the actual killer is
identified precisely (it breaks its private pool again and is recorded as
failed) while innocent casualties complete normally.

**Results merge in stable task order.**  The report lists one
:class:`CellResult` per task, in task-submission order, regardless of which
worker finished first -- serial (``jobs=1``) and parallel runs of the same
task list produce reports in the same order, and all schedule-determined
fields (operation counts, MxV/MxM multiplication counts, DD node sizes)
are bit-identical.  Wall-clock fields are measured *in the worker*, around
the cell alone, so parallel timings remain comparable to serial ones (they
exclude pool scheduling); they still jitter run-to-run like any timing.

**Deterministic per-task seeding.**  Every task gets a seed derived from
``(sweep seed, instance, strategy, repetition)`` via SHA-256 --
independent of worker assignment, completion order, and ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .statistics import SimulationStatistics

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

    from ..circuit.circuit import QuantumCircuit
    from .memory import MemoryGovernor

__all__ = ["SweepTask", "CellResult", "SweepReport", "SweepRunner",
           "task_seed", "run_cell"]

#: fields of ``SimulationStatistics.as_dict()`` that are determined by the
#: strategy schedule and canonical DD structure alone -- bit-identical
#: across processes, job counts, and machines (unlike wall-clock times and
#: recursion counters, whose cache-collision patterns depend on
#: process-local object addresses).
DETERMINISTIC_STAT_FIELDS = (
    "strategy", "circuit_name", "num_qubits", "backend",
    "operations_applied",
    "matrix_vector_mults", "matrix_matrix_mults",
    "reused_block_applications", "direct_constructions",
    "local_gate_applications", "peak_state_nodes", "peak_matrix_nodes",
    "final_state_nodes",
)


def task_seed(base_seed: int, name: str, strategy: str,
              repetition: int) -> int:
    """Deterministic 63-bit seed for one cell.

    Derived by hashing the cell's identity, not by drawing from a shared
    RNG, so the seed does not depend on how many tasks were planned before
    this one, which worker runs it, or the process's hash randomisation.
    """
    text = f"{base_seed}:{name}:{strategy}:{repetition}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SweepTask:
    """One experiment cell: instance x strategy x repetition.

    Tasks cross process boundaries, so they carry only plain data:

    * ``kind="instance"`` -- a benchmark instance rebuilt in the worker
      from ``metadata`` (see
      :func:`repro.analysis.instances.instance_from_spec`); registry
      instances need only their ``name``.
    * ``kind="qasm"`` -- an inline OpenQASM-2 circuit (the text itself, not
      a path, so workers never race on the filesystem).
    * ``kind="construct"`` -- the DD-construct realisation of a Shor
      instance (``metadata`` carries ``modulus``/``base``/``seed``).
    * ``kind="fuzz"`` -- one differential-fuzzing campaign
      (:func:`repro.verification.fuzz.run_fuzz_cell`; ``metadata``
      carries the fuzz config plus ``budget_seconds``/``max_circuits``).
      A backend disagreement raises and is recorded as a failed cell
      whose error message carries the minimized reproducer.

    ``backend`` routes ``qasm``/``instance`` cells through a registered
    :mod:`repro.backends` adapter instead of the engine directly --
    the sweep's backend axis.  ``None`` keeps the legacy engine path
    (bit-identical to earlier reports).

    ``fault`` is a test-only hook parsed by
    :func:`repro.service.faults.parse_fault` (``"raise"``, ``"hang"``,
    ``"os._exit"``, ``"kill@K"``, ``"latency=S"``, ``"budget@K"``, ...)
    used by the fault-injection suites to exercise the failure paths
    without a contrived workload.
    """

    name: str
    strategy: str = "sequential"
    repetition: int = 0
    kind: str = "instance"
    metadata: dict = field(default_factory=dict)
    qasm: str | None = None
    use_local_apply: bool = False
    seed: int = 0
    timeout: float | None = None
    max_nodes: int | None = None
    gc_limit: int | None = None
    #: reorder policy spec (``"governor"`` / ``"every=K"``; ``None`` = off),
    #: honoured by ``qasm`` and ``instance`` cells
    reorder: str | None = None
    #: registered backend name (``repro.backends``) to run the cell
    #: through; ``None`` = the legacy direct-engine path
    backend: str | None = None
    fault: str | None = None

    def key(self) -> tuple:
        return (self.name, self.strategy, self.repetition)


@dataclass
class CellResult:
    """Outcome of one cell: statistics on success, an error record otherwise.

    ``wall_seconds`` is measured in the worker around the cell alone
    (engine construction + simulation), excluding pool scheduling and
    result pickling, so parallel and serial measurements are comparable.
    """

    name: str
    strategy: str
    repetition: int
    status: str = "ok"                    # "ok" | "failed" | "timeout"
    statistics: dict | None = None        # SimulationStatistics.as_dict()
    error: dict | None = None             # {"type": ..., "message": ...}
    attempts: int = 1
    worker_pid: int = 0
    wall_seconds: float = 0.0
    seed: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def key(self) -> tuple:
        return (self.name, self.strategy, self.repetition)

    def stats(self) -> SimulationStatistics:
        """Rebuild the run's :class:`SimulationStatistics` (ok cells only)."""
        if self.statistics is None:
            raise ValueError(f"cell {self.key()} has no statistics "
                             f"(status {self.status!r})")
        return SimulationStatistics.from_dict(self.statistics)

    def as_dict(self, deterministic: bool = False) -> dict:
        """JSON payload; ``deterministic=True`` keeps only fields that are
        bit-identical across processes and job counts (drops wall-clock,
        worker pid, and the address-sensitive recursion counters)."""
        payload = {
            "name": self.name,
            "strategy": self.strategy,
            "repetition": self.repetition,
            "status": self.status,
            "attempts": self.attempts,
            "seed": self.seed,
        }
        if self.error is not None:
            payload["error"] = dict(self.error)
            if deterministic:
                # tracebacks/messages may embed addresses or pids
                payload["error"] = {"type": self.error.get("type")}
        if self.statistics is not None:
            if deterministic:
                payload["statistics"] = {
                    key: self.statistics[key]
                    for key in DETERMINISTIC_STAT_FIELDS
                    if key in self.statistics}
            else:
                payload["statistics"] = dict(self.statistics)
        if not deterministic:
            payload["worker_pid"] = self.worker_pid
            payload["wall_seconds"] = round(self.wall_seconds, 6)
        return payload


@dataclass
class SweepReport:
    """All cell results, in task-submission order, plus sweep metadata."""

    cells: list[CellResult]
    jobs: int
    wall_seconds: float = 0.0

    @property
    def failed_cells(self) -> list[CellResult]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failed_cells

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        return counts

    def stats_by_key(self) -> dict[tuple, SimulationStatistics]:
        """``(name, strategy, repetition) -> statistics`` for ok cells."""
        return {cell.key(): cell.stats() for cell in self.cells if cell.ok}

    def as_dict(self, deterministic: bool = False) -> dict:
        payload = {
            "schema": 1,
            "cells_total": len(self.cells),
            "status_counts": self.status_counts(),
            "cells": [cell.as_dict(deterministic) for cell in self.cells],
        }
        if not deterministic:
            # jobs and wall time describe *this run*, not the results; a
            # deterministic payload must compare equal across job counts
            payload["jobs"] = self.jobs
            payload["wall_seconds"] = round(self.wall_seconds, 6)
        return payload


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock budget."""


# ----------------------------------------------------------------------
# worker-side execution
# ----------------------------------------------------------------------

def _governor_for(task: SweepTask) -> "MemoryGovernor | None":
    from .memory import MemoryGovernor
    if task.max_nodes is None and task.gc_limit is None:
        return None
    return MemoryGovernor(node_limit=task.gc_limit or 500_000,
                          max_nodes=task.max_nodes)


def _simulate_task(task: SweepTask,
                   on_op: Callable[[int], None] | None = None
                   ) -> SimulationStatistics:
    """Run one cell on freshly constructed, process-local DD state.

    ``on_op`` is the engine's cheap per-op callback (cooperative deadlines
    and op-scoped fault injection).  ``qasm`` and circuit-backed
    ``instance`` cells honour it; ``construct`` cells (direct oracle DD
    builds, no simulation loop) and Shor instances (internally driven
    engine) have no op boundaries to observe it at.
    """
    from .strategies import strategy_from_spec
    if task.kind == "fuzz":
        from ..verification.fuzz import run_fuzz_cell
        return run_fuzz_cell(task.metadata, seed=task.seed)
    if task.backend is not None:
        return _simulate_task_backend(task, on_op)
    if task.kind == "construct":
        from ..analysis.instances import shor_dd_construct_statistics
        if task.reorder is not None:
            raise ValueError("construct cells build oracle DDs directly "
                             "(no simulation loop); reorder= does not apply")
        return shor_dd_construct_statistics(task.metadata["modulus"],
                                            task.metadata["base"],
                                            seed=task.metadata.get("seed", 7))
    if task.kind == "qasm":
        from ..circuit.qasm import from_qasm
        from ..dd.package import Package
        from .engine import SimulationEngine
        circuit = from_qasm(task.qasm)
        governor = _governor_for(task)
        if task.use_local_apply:
            engine = SimulationEngine(governor=governor)
        else:
            engine = SimulationEngine(package=Package(identity_shortcut=False),
                                      use_local_apply=False,
                                      governor=governor)
        result = engine.simulate(circuit, strategy_from_spec(task.strategy),
                                 reorder=task.reorder, on_op=on_op)
        return result.statistics
    if task.kind == "instance":
        from ..analysis.instances import instance_from_spec
        instance = instance_from_spec(task.metadata, task.name)
        return instance.run(strategy_from_spec(task.strategy),
                            use_local_apply=task.use_local_apply,
                            governor=_governor_for(task),
                            reorder=task.reorder,
                            on_op=on_op)
    raise ValueError(f"unknown task kind {task.kind!r}")


def _simulate_task_backend(task: SweepTask,
                           on_op: Callable[[int], None] | None = None
                           ) -> SimulationStatistics:
    """Run a ``qasm``/``instance`` cell through a registered backend.

    Engine-backed adapters honour budgets (``gc_limit``/``max_nodes``
    via factory options) and ``reorder``/``on_op`` run options; array
    backends reject unsupported options with a clear error, which the
    runner records as a failed cell rather than silently ignoring the
    request.
    """
    from ..backends import create_backend
    from ..circuit.qasm import from_qasm
    if task.kind == "qasm":
        circuit = from_qasm(task.qasm)
    elif task.kind == "instance":
        circuit = _instance_circuit(task)
    else:
        raise ValueError(
            f"backend= applies to qasm/instance cells, not {task.kind!r}")
    options = {}
    if task.gc_limit is not None:
        options["gc_limit"] = task.gc_limit
    if task.max_nodes is not None:
        options["max_nodes"] = task.max_nodes
    backend = create_backend(task.backend, **options)
    run_options = {}
    if task.reorder is not None:
        run_options["reorder"] = task.reorder
    if on_op is not None:
        run_options["on_op"] = on_op
    result = backend.run(circuit, strategy=task.strategy, **run_options)
    return result.statistics


def _instance_circuit(task: SweepTask) -> "QuantumCircuit":
    """The plain circuit of a circuit-backed instance cell.

    Rebuilt from the task's metadata (the same payload
    :func:`~repro.analysis.instances.instance_from_spec` uses), falling
    back to the registry under the cell's base name (the part before the
    ``@backend`` suffix the CLI appends for the backend axis).  Shor
    instances drive their own engine and have no standalone circuit.
    """
    kind = task.metadata.get("kind")
    if kind == "grover":
        from ..algorithms.grover import grover_circuit
        return grover_circuit(task.metadata["num_data_qubits"],
                              task.metadata["marked"]).circuit
    if kind == "supremacy":
        from ..algorithms.supremacy import supremacy_circuit
        return supremacy_circuit(task.metadata["rows"],
                                 task.metadata["cols"],
                                 task.metadata["depth"],
                                 task.metadata["seed"]).circuit
    if kind == "shor":
        raise ValueError(
            f"instance {task.name!r} is not circuit-backed (the Shor "
            f"order finder drives its own engine); backend= cells need "
            f"a plain circuit")
    from ..analysis.instances import instance_qasm
    from ..circuit.qasm import from_qasm
    return from_qasm(instance_qasm(task.name.rsplit("@", 1)[0]))


def run_cell(task: SweepTask, in_worker: bool = True) -> CellResult:
    """Execute one cell, converting every failure mode into a record.

    This is the single execution path for both worker processes and the
    inline (``jobs=1``) runner, which is what makes serial and parallel
    sweeps produce identical schedule-determined results.

    Timeouts use ``SIGALRM`` where available (the worker runs cells on
    its main thread), so they interrupt even cells that make no progress;
    elsewhere a cooperative :class:`~repro.service.faults.Deadline` checks
    the budget at every operation boundary instead -- it bounds every cell
    that makes progress, though a single operation that never finishes
    still needs the supervisor layer's lease expiry.

    Fault injection (the ``fault`` spec) goes through the shared
    :class:`~repro.service.faults.FaultInjector`: legacy start-of-cell
    faults (``raise`` / ``hang`` / ``os._exit``) plus op-scoped schedules
    (``kill@K``, ``latency=S``, ``budget@K``).
    """
    # lazy import: repro.simulation's package init imports this module,
    # and repro.service imports repro.simulation submodules
    from ..service.faults import Deadline, FaultInjector, chain_hooks
    result = CellResult(name=task.name, strategy=task.strategy,
                        repetition=task.repetition, worker_pid=os.getpid(),
                        seed=task.seed)
    use_alarm = task.timeout is not None and hasattr(signal, "SIGALRM")
    previous = None
    if use_alarm:
        def _on_alarm(signum, frame):
            raise CellTimeout(
                f"cell {task.key()} exceeded {task.timeout}s")
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, task.timeout)
    started = time.perf_counter()
    try:
        injector = FaultInjector(task.fault, in_worker=in_worker,
                                 label=f"cell {task.key()}")
        injector.at_start()
        deadline = None
        if task.timeout is not None and not use_alarm:
            deadline = Deadline(task.timeout, CellTimeout,
                                f"cell {task.key()}")
        on_op = chain_hooks(
            injector.on_op if injector.wants_op_hook else None, deadline)
        stats = _simulate_task(task, on_op=on_op)
        result.statistics = stats.as_dict()
    except CellTimeout as exc:
        result.status = "timeout"
        result.error = {"type": "CellTimeout", "message": str(exc)}
    except Exception as exc:  # incl. MemoryBudgetExceeded (a MemoryError)
        result.status = "failed"
        result.error = {"type": type(exc).__name__, "message": str(exc)}
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
    result.wall_seconds = time.perf_counter() - started
    return result


def _worker_main(task: SweepTask) -> CellResult:
    return run_cell(task, in_worker=True)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

class SweepRunner:
    """Fan a task list out over shared-nothing worker processes.

    Parameters
    ----------
    jobs:
        Worker process count.  ``jobs=1`` executes inline in the calling
        process (no pool, easier debugging); results are identical to a
        parallel run up to wall-clock jitter.
    retries:
        How many times a cell whose *worker died* is retried on a fresh
        pool before being recorded as failed.  Cells that merely raise are
        never retried -- the exception is deterministic, the death of the
        host process is not necessarily.
    mp_context:
        A ``multiprocessing`` context (or context name like ``"fork"`` /
        ``"spawn"``); defaults to the platform default.
    """

    def __init__(self, jobs: int = 1, retries: int = 1,
                 mp_context: "BaseContext | str | None" = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.retries = retries
        if isinstance(mp_context, str):
            import multiprocessing
            mp_context = multiprocessing.get_context(mp_context)
        self.mp_context = mp_context

    # -- public API -----------------------------------------------------

    def run(self, tasks: list[SweepTask]) -> SweepReport:
        """Execute every task; the report lists results in task order."""
        tasks = list(tasks)
        started = time.perf_counter()
        if self.jobs == 1 or len(tasks) <= 1:
            cells = [run_cell(task, in_worker=False) for task in tasks]
        else:
            cells = self._run_pool(tasks)
        return SweepReport(cells=cells, jobs=self.jobs,
                           wall_seconds=time.perf_counter() - started)

    # -- pool orchestration ---------------------------------------------

    def _run_pool(self, tasks: list[SweepTask]) -> list[CellResult]:
        results: dict[int, CellResult] = {}
        casualties = self._first_pass(tasks, results)
        for index in casualties:
            self._retry_isolated(index, tasks[index], results)
        return [results[i] for i in range(len(tasks))]

    def _first_pass(self, tasks: list[SweepTask],
                    results: dict[int, CellResult]) -> list[int]:
        """Run all tasks on one pool; return indices orphaned by a death.

        A dead worker breaks the whole ``ProcessPoolExecutor``: every
        unfinished future -- the killer's *and* innocent queued cells' --
        raises :class:`BrokenProcessPool`.  Rather than guess which cell
        was fatal, all of them go to :meth:`_retry_isolated`.
        """
        casualties: list[int] = []
        with ProcessPoolExecutor(max_workers=self.jobs,
                                 mp_context=self.mp_context) as pool:
            futures = {pool.submit(_worker_main, task): index
                       for index, task in enumerate(tasks)}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        casualties.append(index)
                    except Exception as exc:
                        # e.g. the result failed to unpickle -- a harness
                        # bug, but still: never kill the sweep.
                        results[index] = self._harness_failure(
                            tasks[index], exc, attempts=1)
        casualties.sort()
        return casualties

    def _retry_isolated(self, index: int, task: SweepTask,
                        results: dict[int, CellResult]) -> None:
        """Retry one orphaned cell on private single-worker pools.

        Isolation makes the diagnosis exact: if the cell's own fresh pool
        breaks again, *this* cell is the killer (and is recorded as
        failed once its retries run out); an innocent casualty of another
        cell's crash simply completes here.
        """
        attempts = 1  # the broken first pass counted as one attempt
        while True:
            try:
                with ProcessPoolExecutor(
                        max_workers=1, mp_context=self.mp_context) as pool:
                    result = pool.submit(_worker_main, task).result()
                result.attempts = attempts + 1
                results[index] = result
                return
            except BrokenProcessPool:
                attempts += 1
                if attempts > self.retries + 1:
                    results[index] = CellResult(
                        name=task.name, strategy=task.strategy,
                        repetition=task.repetition, status="failed",
                        error={"type": "WorkerDied",
                               "message": "worker process died mid-cell "
                                          f"{attempts} time(s) (killed or "
                                          "crashed); cell abandoned"},
                        attempts=attempts, seed=task.seed)
                    return
            except Exception as exc:
                results[index] = self._harness_failure(task, exc, attempts + 1)
                return

    @staticmethod
    def _harness_failure(task: SweepTask, exc: Exception,
                         attempts: int) -> CellResult:
        return CellResult(name=task.name, strategy=task.strategy,
                          repetition=task.repetition, status="failed",
                          error={"type": type(exc).__name__,
                                 "message": str(exc)},
                          attempts=attempts, seed=task.seed)
