"""Legacy setup shim.

Kept so ``pip install -e .`` works on offline environments that lack the
``wheel`` package (PEP 660 editable installs need to build a wheel; the
legacy path does not).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
